"""Tests for the policy heads, masking patterns and trainers."""

import numpy as np
import pytest

from repro.core import (
    PREDICTION_HORIZON,
    WINDOW_LENGTH,
    BaselinePolicy,
    CorkiPolicy,
    TrainingConfig,
    build_baseline_dataset,
    build_corki_dataset,
    deployment_slot_pattern,
    train_baseline,
    train_corki,
)
from repro.sim import (
    OBSERVATION_DIM,
    SEEN_LAYOUT,
    TASKS,
    ActionNormalizer,
    collect_demonstrations,
    corki_targets,
)


@pytest.fixture(scope="module")
def small_demos():
    return collect_demonstrations(SEEN_LAYOUT, np.random.default_rng(0), per_task=2)


class TestSlotPattern:
    def test_newest_slot_always_real(self, rng):
        for period in range(1, 10):
            real, _ = deployment_slot_pattern(WINDOW_LENGTH, period, rng)
            assert real[-1]

    def test_period_one_keeps_everything(self, rng):
        real, feedback = deployment_slot_pattern(WINDOW_LENGTH, 1, rng)
        assert real.all()
        assert not feedback.any()

    def test_real_slots_spaced_by_period(self, rng):
        real, _ = deployment_slot_pattern(WINDOW_LENGTH, 4, rng, closed_loop=False)
        indices = np.flatnonzero(real)
        assert np.all(np.diff(indices) == 4)

    def test_feedback_never_overlaps_real(self, rng):
        for _ in range(20):
            real, feedback = deployment_slot_pattern(WINDOW_LENGTH, 5, rng)
            assert not (real & feedback).any()

    def test_closed_loop_disabled(self, rng):
        _, feedback = deployment_slot_pattern(WINDOW_LENGTH, 5, rng, closed_loop=False)
        assert not feedback.any()


class TestBaselinePolicy:
    def test_forward_shapes(self, rng):
        policy = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        windows = rng.normal(size=(4, WINDOW_LENGTH, OBSERVATION_DIM))
        pose, gripper = policy(windows, np.zeros(4, dtype=int))
        assert pose.shape == (4, 6)
        assert gripper.shape == (4, 1)

    def test_predict_returns_physical_delta(self, rng):
        policy = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        policy.set_normalizer(ActionNormalizer(np.full(6, 0.01)))
        delta, gripper_open = policy.predict(
            rng.normal(size=(WINDOW_LENGTH, OBSERVATION_DIM)), 0
        )
        assert delta.shape == (6,)
        assert isinstance(gripper_open, bool)
        assert np.all(np.abs(delta) < 0.1)  # normalised outputs x 1 cm scale

    def test_dataset_construction(self, small_demos):
        normalizer = ActionNormalizer.fit(small_demos)
        windows, instructions, poses, grippers = build_baseline_dataset(
            small_demos, normalizer
        )
        expected = sum(len(demo) - 1 for demo in small_demos)
        assert len(windows) == len(instructions) == len(poses) == len(grippers) == expected
        assert windows.shape[1:] == (WINDOW_LENGTH, OBSERVATION_DIM)
        # Normalised targets should be O(1).
        assert 0.1 < np.abs(poses).mean() < 3.0


def _reference_window(demo, t):
    """The pre-vectorisation per-row window gather, frozen as an oracle."""
    indices = np.clip(np.arange(t - WINDOW_LENGTH + 1, t + 1), 0, len(demo) - 1)
    return demo.observations[indices]


class TestVectorizedDatasetBuilders:
    """Array-indexed builders must be element-for-element the per-row loops."""

    def test_baseline_builder_matches_per_row_reference(self, small_demos):
        normalizer = ActionNormalizer.fit(small_demos)
        windows, instructions, poses, grippers = build_baseline_dataset(
            small_demos, normalizer
        )
        row = 0
        for demo in small_demos:
            for t in range(len(demo) - 1):
                assert np.array_equal(windows[row], _reference_window(demo, t))
                assert instructions[row] == demo.instruction_id
                assert np.array_equal(
                    poses[row], normalizer.normalize(demo.poses[t + 1] - demo.poses[t])
                )
                assert grippers[row, 0] == float(demo.gripper_open[t + 1])
                row += 1
        assert row == len(windows)

    def test_corki_builder_matches_corki_targets(self, small_demos):
        normalizer = ActionNormalizer.fit(small_demos)
        horizon = PREDICTION_HORIZON
        windows, instructions, offsets, grippers = build_corki_dataset(
            small_demos, normalizer, horizon
        )
        assert offsets.shape[1:] == (horizon + 1, 6)
        assert grippers.shape[1] == horizon
        row = 0
        for demo in small_demos:
            for t in range(len(demo) - 1):
                assert np.array_equal(windows[row], _reference_window(demo, t))
                assert instructions[row] == demo.instruction_id
                ref_offsets, ref_gripper = corki_targets(demo, t, horizon)
                assert np.array_equal(offsets[row, 0], np.zeros(6))
                assert np.array_equal(offsets[row, 1:], ref_offsets / normalizer.scale)
                assert np.array_equal(grippers[row], ref_gripper)
                row += 1
        assert row == len(windows)

    def test_corki_training_is_seed_for_seed_stable(self, small_demos):
        """Two runs from one seed produce identical losses and weights (the
        vectorised batch assembly consumes the generator exactly like the
        historical per-batch loops did)."""
        config = TrainingConfig(epochs=1, batch_size=16, seed=3)
        losses, weights = [], []
        for _ in range(2):
            policy = CorkiPolicy(
                OBSERVATION_DIM, len(TASKS), np.random.default_rng(5),
                token_dim=16, hidden_dim=24,
            )
            losses.append(train_corki(policy, small_demos, config))
            weights.append([p.data.copy() for p in policy.parameters()])
        assert losses[0] == losses[1]
        assert all(np.array_equal(a, b) for a, b in zip(*weights))


class TestCorkiPolicy:
    def test_forward_shapes(self, rng):
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        windows = rng.normal(size=(3, WINDOW_LENGTH, OBSERVATION_DIM))
        real = np.ones((3, WINDOW_LENGTH), dtype=bool)
        coefficients, gripper = policy(windows, np.zeros(3, dtype=int), real)
        assert coefficients.shape == (3, 6, 4)
        assert gripper.shape == (3, PREDICTION_HORIZON)

    def test_waypoint_offsets_match_basis(self, rng):
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        from repro.nn import Tensor

        coefficients = Tensor(rng.normal(size=(2, 6, 4)))
        waypoints = policy.waypoint_offsets(coefficients).numpy()
        tau = np.arange(0, PREDICTION_HORIZON + 1) / PREDICTION_HORIZON
        manual = np.einsum(
            "bdk,kj->bdj",
            coefficients.numpy(),
            np.stack([tau**3, tau**2, tau, np.ones_like(tau)]),
        )
        assert np.allclose(waypoints, manual)
        # j = 0 samples the constant coefficient only (Eq. 5 pins it to zero).
        assert np.allclose(waypoints[..., 0], coefficients.numpy()[..., 3])

    def test_mask_changes_prediction(self, rng):
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        windows = rng.normal(size=(1, WINDOW_LENGTH, OBSERVATION_DIM))
        all_real = np.ones((1, WINDOW_LENGTH), dtype=bool)
        sparse = np.zeros((1, WINDOW_LENGTH), dtype=bool)
        sparse[0, -1] = True
        full, _ = policy(windows, np.zeros(1, dtype=int), all_real)
        masked, _ = policy(windows, np.zeros(1, dtype=int), sparse)
        assert not np.allclose(full.numpy(), masked.numpy())

    def test_predict_trajectory_units(self, rng):
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        scale = np.full(6, 0.01)
        policy.set_normalizer(ActionNormalizer(scale))
        tokens = rng.normal(size=(WINDOW_LENGTH, 16))
        origin = np.array([0.1, -0.2, 0.15, 0.0, 0.0, 0.3])
        trajectory = policy.predict_trajectory(tokens, origin, step_dt=1 / 30)
        assert trajectory.steps == PREDICTION_HORIZON
        assert np.allclose(trajectory.pose(0.0), origin, atol=0.2)
        assert trajectory.duration == pytest.approx(PREDICTION_HORIZON / 30)

    def test_corki_targets_hold_final_pose(self, small_demos):
        demo = small_demos[0]
        offsets, gripper = corki_targets(demo, len(demo) - 1, PREDICTION_HORIZON)
        assert np.allclose(offsets, 0.0)
        assert gripper.shape == (PREDICTION_HORIZON,)


class TestTraining:
    def test_baseline_loss_decreases(self, small_demos, rng):
        policy = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        history = train_baseline(policy, small_demos, TrainingConfig(epochs=3, batch_size=64))
        assert history[-1] < history[0]

    def test_corki_loss_decreases(self, small_demos, rng):
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        history = train_corki(policy, small_demos, TrainingConfig(epochs=3, batch_size=64))
        assert history[-1] < history[0]

    def test_training_sets_normalizer(self, small_demos, rng):
        policy = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        train_baseline(policy, small_demos, TrainingConfig(epochs=1, batch_size=64))
        assert not np.allclose(policy.normalizer.scale, np.ones(6))
