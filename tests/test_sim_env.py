"""Tests for the manipulation environment: stepping, grasping, tasks."""

import numpy as np
import pytest

from repro.sim import (
    PERFECT_ACTUATION,
    SEEN_LAYOUT,
    TASKS,
    ManipulationEnv,
    task_by_instruction,
)
from repro.sim.tasks import sample_job


def make_env(seed=0, actuation=PERFECT_ACTUATION):
    return ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed), actuation=actuation)


def goto(env, position, gripper_open=True, steps=30, yaw=0.0):
    """Drive the end-effector to ``position`` with perfect actuation."""
    target = np.array([position[0], position[1], position[2], 0.0, 0.0, yaw])
    obs = None
    for _ in range(steps):
        obs = env.step(target, gripper_open)
    return obs


class TestEpisodeLifecycle:
    def test_reset_returns_observation(self):
        env = make_env()
        obs = env.reset(TASKS[0])
        assert obs.shape == (48,)

    def test_observe_before_reset_raises(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            env.observe()

    def test_step_before_reset_raises(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            env.step(np.zeros(6), True)

    def test_frame_counter(self):
        env = make_env()
        env.reset(TASKS[0])
        for _ in range(5):
            env.step(env.scene.ee_pose, True)
        assert env.frame_count == 5


class TestGraspingMechanics:
    def test_grasp_and_lift_block(self):
        env = make_env()
        task = task_by_instruction("lift the red block")
        env.reset(task)
        block = env.scene.blocks["red"]
        goto(env, [block.position[0], block.position[1], 0.03], gripper_open=True)
        goto(env, [block.position[0], block.position[1], 0.03], gripper_open=False, steps=2)
        assert env.scene.attached == "red"
        goto(env, [block.position[0], block.position[1], 0.2], gripper_open=False)
        assert env.scene.blocks["red"].position[2] > 0.15
        assert env.succeeded

    def test_release_drops_block_to_table(self):
        env = make_env()
        env.reset(task_by_instruction("lift the red block"))
        block = env.scene.blocks["red"]
        goto(env, [block.position[0], block.position[1], 0.03])
        goto(env, [block.position[0], block.position[1], 0.03], gripper_open=False, steps=2)
        goto(env, [block.position[0], block.position[1], 0.2], gripper_open=False)
        goto(env, [block.position[0], block.position[1], 0.2], gripper_open=True, steps=2)
        assert env.scene.attached is None
        assert env.scene.blocks["red"].position[2] == pytest.approx(0.02)

    def test_closing_far_from_objects_grabs_nothing(self):
        env = make_env()
        env.reset(TASKS[0])
        goto(env, [0.0, 0.0, 0.3], gripper_open=False, steps=2)
        assert env.scene.attached is None

    def test_drawer_follows_gripper(self):
        env = make_env()
        task = task_by_instruction("open the drawer")
        env.reset(task)
        handle = env.scene.drawer.handle_position
        goto(env, handle)
        goto(env, handle, gripper_open=False, steps=2)
        assert env.scene.attached == "drawer"
        target = env.scene.drawer.handle_base + 0.15 * env.scene.drawer.axis
        goto(env, target, gripper_open=False)
        assert env.scene.drawer.opening > 0.12
        assert env.succeeded

    def test_drawer_opening_clamped(self):
        env = make_env()
        env.reset(task_by_instruction("open the drawer"))
        handle = env.scene.drawer.handle_position
        goto(env, handle)
        goto(env, handle, gripper_open=False, steps=2)
        far = env.scene.drawer.handle_base + 1.0 * env.scene.drawer.axis
        goto(env, far, gripper_open=False)
        assert env.scene.drawer.opening <= env.scene.drawer.max_opening + 1e-9

    def test_switch_task(self):
        env = make_env()
        task = task_by_instruction("turn the switch on")
        env.reset(task)
        handle = env.scene.switch.handle_position
        goto(env, handle)
        goto(env, handle, gripper_open=False, steps=2)
        assert env.scene.attached == "switch"
        target = env.scene.switch.handle_base + 0.95 * env.scene.switch.travel * env.scene.switch.axis
        goto(env, target, gripper_open=False)
        assert env.succeeded

    def test_rotate_block_yaw_follows(self):
        env = make_env()
        task = task_by_instruction("rotate the red block to the left")
        env.reset(task)
        block = env.scene.blocks["red"]
        initial_yaw = block.yaw
        goto(env, [block.position[0], block.position[1], 0.03], yaw=block.yaw)
        goto(env, [block.position[0], block.position[1], 0.03], gripper_open=False, steps=2, yaw=block.yaw)
        goto(
            env,
            [block.position[0], block.position[1], 0.03],
            gripper_open=False,
            yaw=block.yaw + np.pi / 2,
        )
        assert env.scene.blocks["red"].yaw - initial_yaw > np.pi / 3
        assert env.succeeded


class TestTaskRegistry:
    def test_instruction_ids_are_indices(self):
        for index, task in enumerate(TASKS):
            assert task.instruction_id == index

    def test_unknown_instruction_raises(self):
        with pytest.raises(KeyError):
            task_by_instruction("fly to the moon")

    def test_all_families_present(self):
        families = {task.family for task in TASKS}
        assert families == {
            "lift", "move", "rotate", "drawer", "switch",
            "push", "lightbulb", "led", "place", "stack", "unstack",
        }

    def test_job_sampling_distinct_resources(self):
        from repro.sim.tasks import _task_resources

        rng = np.random.default_rng(0)
        for _ in range(20):
            job = sample_job(rng)
            assert len(job) == 5
            used = set()
            for task in job:
                resources = _task_resources(task)
                assert not (used & resources)
                used |= resources

    def test_prepare_makes_close_drawer_feasible(self):
        env = make_env()
        env.reset(task_by_instruction("close the drawer"))
        assert env.scene.drawer.opening > 0.1


class TestExpertDemonstrations:
    def test_noise_free_expert_succeeds_everywhere(self):
        from repro.sim import collect_demonstrations

        demos = collect_demonstrations(
            SEEN_LAYOUT, np.random.default_rng(3), per_task=2, jitter_std=0.0,
            keep_failures=True,
        )
        success_rate = np.mean([demo.succeeded for demo in demos])
        assert success_rate == 1.0

    def test_jittered_expert_mostly_succeeds(self):
        from repro.sim import collect_demonstrations

        demos = collect_demonstrations(
            SEEN_LAYOUT, np.random.default_rng(4), per_task=2, keep_failures=True
        )
        assert np.mean([demo.succeeded for demo in demos]) > 0.8

    def test_demo_arrays_aligned(self):
        from repro.sim import collect_demonstrations

        demos = collect_demonstrations(SEEN_LAYOUT, np.random.default_rng(5), per_task=1)
        for demo in demos:
            assert len(demo.observations) == len(demo.poses) == len(demo.gripper_open)
            assert len(demo.clean_poses) == len(demo.poses)
