"""Tests for the accelerator: datapath, schedules, ACE, buffers, resources."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accelerator import (
    ALL_UNITS,
    DESIGN_THRESHOLD,
    ZC706,
    BufferOverflow,
    BufferUnderflow,
    CorkiAccelerator,
    Fifo,
    JointImpactModel,
    LineBuffer,
    Scratchpad,
    ablation,
    baseline_cycles,
    mass_matrix_joint_sensitivity,
    pipelined_cycles,
    resource_report,
    reuse_cycles,
)
from repro.robot import (
    TaskSpaceComputedTorqueController,
    TaskSpaceReference,
    end_effector_pose,
    panda,
)


@pytest.fixture(scope="module")
def model():
    return panda()


@pytest.fixture(scope="module")
def impact(model):
    return JointImpactModel.from_model(model)


class TestSchedules:
    def test_ordering(self):
        reports = ablation(7)
        assert (
            reports["reuse+pipeline"].cycles
            < reports["data-reuse"].cycles
            < reports["baseline"].cycles
        )

    def test_reductions_match_paper_shape(self):
        base = baseline_cycles(7)
        reuse = reuse_cycles(7)
        pipe = pipelined_cycles(7)
        assert 0.45 <= reuse.reduction_vs(base) <= 0.60  # paper: 54.0%
        assert 0.78 <= pipe.reduction_vs(base) <= 0.90  # paper: 86.0%

    @given(st.integers(2, 12))
    def test_monotone_in_links(self, links):
        assert baseline_cycles(links + 1).cycles > baseline_cycles(links).cycles
        assert pipelined_cycles(links + 1).cycles > pipelined_cycles(links).cycles

    def test_accelerator_supports_100hz(self):
        """A full control tick must fit comfortably in a 10 ms period."""
        assert pipelined_cycles(7).microseconds < 100.0

    def test_initiation_intervals_positive(self):
        for unit in ALL_UNITS:
            assert unit.initiation_interval >= 1
            assert unit.cycles(7) > unit.pipeline_depth


class TestImpactModel:
    def test_middle_joints_dominate(self, impact):
        """Fig. 9's shape: joints 2-4 matter, joints 1 and 7 do not."""
        mass = impact.mass
        assert mass[1] > 5 * mass[0]
        assert mass[1] > 5 * mass[6]
        assert max(mass[1:4]) == max(mass)

    def test_normalised(self, impact):
        for vector in (impact.jacobian, impact.mass, impact.bias):
            assert vector.sum() == pytest.approx(1.0)
            assert np.all(vector >= 0)

    def test_sensitivity_grows_with_angle(self, model):
        angles = (np.deg2rad(6), np.deg2rad(17), np.deg2rad(29))
        sensitivity = mass_matrix_joint_sensitivity(model, angles=angles)
        for joint in (1, 2, 3):
            values = [sensitivity[float(a)][joint] for a in angles]
            assert values[0] < values[1] < values[2]

    def test_joint1_invariant(self, model):
        """Base yaw cannot change the joint-space mass matrix."""
        sensitivity = mass_matrix_joint_sensitivity(model, angles=(np.deg2rad(29),))
        assert sensitivity[float(np.deg2rad(29))][0] < 1e-9


class TestAceUnit:
    def test_first_tick_updates_everything(self, model, impact):
        accelerator = CorkiAccelerator(model, threshold=DESIGN_THRESHOLD, impact=impact)
        reference = TaskSpaceReference(
            end_effector_pose(model, model.q_home), np.zeros(6), np.zeros(6)
        )
        result = accelerator.control_tick(reference, model.q_home, np.zeros(7))
        assert all(result.updated.values())

    def test_stationary_robot_skips_updates(self, model, impact):
        accelerator = CorkiAccelerator(model, threshold=DESIGN_THRESHOLD, impact=impact)
        reference = TaskSpaceReference(
            end_effector_pose(model, model.q_home), np.zeros(6), np.zeros(6)
        )
        for _ in range(5):
            result = accelerator.control_tick(reference, model.q_home, np.zeros(7))
        assert not any(result.updated.values())
        assert accelerator.skip_rate > 0.5

    def test_threshold_zero_always_updates(self, model, impact):
        accelerator = CorkiAccelerator(model, threshold=0.0, impact=impact)
        reference = TaskSpaceReference(
            end_effector_pose(model, model.q_home), np.zeros(6), np.zeros(6)
        )
        rng = np.random.default_rng(0)
        for k in range(5):
            q = model.q_home + 1e-6 * rng.normal(size=7)
            result = accelerator.control_tick(reference, q, np.zeros(7))
        assert all(result.updated.values())
        assert accelerator.skip_rate == 0.0

    def test_functional_equivalence_at_zero_threshold(self, model, impact, rng):
        """Paper invariant: no approximation => identical torques to software."""
        accelerator = CorkiAccelerator(model, threshold=0.0, impact=impact)
        controller = TaskSpaceComputedTorqueController(model)
        for _ in range(3):
            q = model.clamp_configuration(model.q_home + 0.1 * rng.normal(size=7))
            qd = 0.2 * rng.normal(size=7)
            pose = end_effector_pose(model, q)
            pose[0] += 0.02
            reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
            expected = controller.torque(reference, q, qd)
            result = accelerator.control_tick(reference, q, qd)
            assert np.allclose(result.torque, expected, atol=1e-10)

    def test_approximate_torque_stays_close(self, model, impact):
        """Small drift with reuse must give near-exact torques."""
        accelerator = CorkiAccelerator(model, threshold=DESIGN_THRESHOLD, impact=impact)
        controller = TaskSpaceComputedTorqueController(model)
        pose = end_effector_pose(model, model.q_home)
        reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
        q = model.q_home.copy()
        accelerator.control_tick(reference, q, np.zeros(7))
        q2 = q + 1e-4
        result = accelerator.control_tick(reference, q2, np.zeros(7))
        expected = controller.torque(reference, q2, np.zeros(7))
        assert np.abs(result.torque - expected).max() < 0.5  # newton-metres

    def test_cycles_reflect_updates(self, model, impact):
        accelerator = CorkiAccelerator(model, threshold=DESIGN_THRESHOLD, impact=impact)
        pose = end_effector_pose(model, model.q_home)
        reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
        full = accelerator.control_tick(reference, model.q_home, np.zeros(7))
        reused = accelerator.control_tick(reference, model.q_home, np.zeros(7))
        assert full.cycles == accelerator.full_tick_cycles()
        assert reused.cycles == accelerator.min_tick_cycles()
        assert reused.cycles < full.cycles

    def test_higher_threshold_skips_more(self, model, impact):
        rng = np.random.default_rng(1)
        drift = 5e-3 * rng.normal(size=(60, 7))
        skip_rates = []
        for threshold in (0.2, 0.8):
            accelerator = CorkiAccelerator(model, threshold=threshold, impact=impact)
            pose = end_effector_pose(model, model.q_home)
            reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
            q = model.q_home.copy()
            for step in range(60):
                q = q + drift[step]
                accelerator.control_tick(reference, q, np.zeros(7))
            skip_rates.append(accelerator.skip_rate)
        assert skip_rates[1] > skip_rates[0]


class TestBuffers:
    def test_fifo_order_and_overflow(self):
        fifo = Fifo("test", capacity=2)
        fifo.push(1)
        fifo.push(2)
        with pytest.raises(BufferOverflow):
            fifo.push(3)
        assert fifo.pop() == 1
        assert fifo.pop() == 2
        with pytest.raises(BufferUnderflow):
            fifo.pop()
        assert fifo.high_water == 2

    def test_line_buffer_random_access(self):
        buffer = LineBuffer("forces", lines=7, line_words=6)
        buffer.write(3, "force-3")
        assert buffer.read(3) == "force-3"
        with pytest.raises(BufferUnderflow):
            buffer.read(4)
        with pytest.raises(BufferOverflow):
            buffer.write(7, "x")

    def test_scratchpad_capacity(self):
        pad = Scratchpad("pad", capacity_bytes=80)
        pad.store("a", 5, "A")  # 40 bytes
        pad.store("a", 6, "A2")  # replaces, 48 bytes
        with pytest.raises(BufferOverflow):
            pad.store("b", 8, "B")  # 48 + 64 > 80
        assert pad.load("a") == "A2"
        with pytest.raises(BufferUnderflow):
            pad.load("missing")


class TestResources:
    def test_matches_paper_utilisation(self):
        report = resource_report()
        assert report.dsp_pct == pytest.approx(13.6, abs=0.5)
        assert report.ff_pct == pytest.approx(7.8, abs=0.5)
        assert report.lut_pct == pytest.approx(16.9, abs=0.5)
        assert report.bram_pct == pytest.approx(6.6, abs=0.5)

    def test_fits_on_device(self):
        report = resource_report()
        assert report.dsp < ZC706.dsp
        assert report.lut < ZC706.lut
        assert report.ff < ZC706.ff
        assert report.bram_36kb < ZC706.bram_36kb
