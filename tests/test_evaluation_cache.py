"""Tests for the train-once cache behind the accuracy experiments."""

import numpy as np

import repro.analysis.evaluation as evaluation


class TestPolicyCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        """Second call must load identical weights without retraining."""
        monkeypatch.setattr(evaluation, "_CACHE_DIR", str(tmp_path))
        first = evaluation.get_trained_policies(demos_per_task=1, epochs=1, hidden_dim=24, token_dim=16)
        token_before = first.corki.encode_frame_token(np.zeros(48), 0)

        second = evaluation.get_trained_policies(demos_per_task=1, epochs=1, hidden_dim=24, token_dim=16)
        token_after = second.corki.encode_frame_token(np.zeros(48), 0)
        assert np.allclose(token_before, token_after)
        assert np.allclose(first.baseline.normalizer.scale, second.baseline.normalizer.scale)

    def test_cache_key_includes_hyperparameters(self, tmp_path, monkeypatch):
        monkeypatch.setattr(evaluation, "_CACHE_DIR", str(tmp_path))
        evaluation.get_trained_policies(demos_per_task=1, epochs=1, hidden_dim=24, token_dim=16)
        files = list(tmp_path.iterdir())
        assert files, "cache files must be written"
        assert any("d1-e1" in f.name for f in files)

    def test_no_cache_flag_skips_writing(self, tmp_path, monkeypatch):
        monkeypatch.setattr(evaluation, "_CACHE_DIR", str(tmp_path))
        evaluation.get_trained_policies(
            demos_per_task=1, epochs=1, hidden_dim=24, token_dim=16, use_cache=False
        )
        assert not list(tmp_path.iterdir())
