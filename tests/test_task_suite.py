"""The 34-instruction task suite: registry, predicates, mechanics, sampling.

Covers the task-suite PR's guarantees:

* registry shape (34 instructions, 11 families, unique instructions, O(1)
  lookup);
* the two predicate bugfixes (``sample_job`` resource keying, rotate-delta
  wrapping across the +-pi seam) as regression tests;
* the new scene mechanics (push/shove, stack/settle, drawer basin, button
  LED) at the environment level; and
* the expert-oracle property: every registry task's expert keyframes achieve
  its own ``success`` predicate from sampled scenes on both layouts.
"""

import numpy as np
import pytest

from repro.analysis.evaluation import (
    evaluate_system_families,
    expert_oracle_families,
)
from repro.sim import (
    BLOCK_NAMES,
    PERFECT_ACTUATION,
    SEEN_LAYOUT,
    TASK_FAMILIES,
    TASKS,
    UNSEEN_LAYOUT,
    ManipulationEnv,
    sample_job,
    sample_scene,
    task_by_instruction,
    tasks_by_family,
    wrap_angle,
)
from repro.sim.expert import render_keyframes
from repro.sim.tasks import _ensure_unique_instructions, _task_resources


def make_env(layout=SEEN_LAYOUT, seed=0):
    return ManipulationEnv(
        layout, np.random.default_rng(seed), actuation=PERFECT_ACTUATION,
        camera_noise_std=0.0,
    )


def goto(env, position, gripper_open=True, steps=30, yaw=0.0):
    target = np.array([position[0], position[1], position[2], 0.0, 0.0, yaw])
    for _ in range(steps):
        env.step(target, gripper_open)


def run_expert(env, task):
    """Roll the jitter-free expert for ``task`` on ``env``'s current scene."""
    assert env.scene is not None
    trajectory = render_keyframes(env.scene.ee_pose, task.expert(env.scene), env.frame_dt)
    for t in range(1, len(trajectory)):
        env.step(trajectory.poses[t], bool(trajectory.gripper_open[t]))
    return env.succeeded


class TestRegistryShape:
    def test_calvin_scale(self):
        assert len(TASKS) == 34
        assert len(TASK_FAMILIES) >= 8

    def test_instructions_unique(self):
        assert len({task.instruction for task in TASKS}) == len(TASKS)

    def test_duplicate_instruction_rejected(self):
        with pytest.raises(ValueError, match="duplicate instruction"):
            _ensure_unique_instructions([TASKS[0], TASKS[1], TASKS[0]])

    def test_lookup_matches_linear_scan(self):
        for task in TASKS:
            assert task_by_instruction(task.instruction) is task

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            task_by_instruction("juggle the blocks")

    def test_tasks_by_family(self):
        assert len(tasks_by_family("push")) == 6
        assert len(tasks_by_family("stack")) == 1
        with pytest.raises(KeyError):
            tasks_by_family("juggling")

    def test_block_tasks_declare_objects_and_fixture_tasks_a_fixture(self):
        for task in TASKS:
            assert task.objects or task.fixture is not None
            for name in task.objects:
                assert name in BLOCK_NAMES
            if task.fixture is not None:
                assert task.fixture in ("drawer", "switch", "button")


class TestSampleJobRegression:
    """Bugfix: jobs were keyed by family+object, so two families could touch
    the same block (e.g. 'push the blue block' plus 'lift the blue block')."""

    @staticmethod
    def _old_sample(rng, length=5):
        """The pre-fix sampler, reproduced verbatim for the regression."""
        chosen, used_keys = [], set()
        while len(chosen) < length:
            task = TASKS[int(rng.integers(len(TASKS)))]
            words = task.instruction.split()
            key = task.family + (
                words[2] if task.family in ("lift", "move", "rotate") else ""
            )
            if key in used_keys:
                continue
            used_keys.add(key)
            chosen.append(task)
        return chosen

    def test_old_keying_collides_on_seed_zero(self):
        """Seed 0 made the old sampler pair two tasks on one block."""
        job = self._old_sample(np.random.default_rng(0))
        objects = [name for task in job for name in task.objects]
        assert len(objects) != len(set(objects))

    def test_fixed_sampler_keeps_resources_disjoint_on_seed_zero(self):
        job = sample_job(np.random.default_rng(0))
        used = set()
        for task in job:
            resources = _task_resources(task)
            assert not (used & resources)
            used |= resources

    def test_resources_disjoint_across_many_seeds(self):
        for seed in range(200):
            rng = np.random.default_rng(seed)
            job = sample_job(rng)
            assert len(job) == 5
            used = set()
            for task in job:
                resources = _task_resources(task)
                assert not (used & resources), [t.instruction for t in job]
                used |= resources

    def test_lightbulb_and_switch_share_the_switch_resource(self):
        """Chaining 'turn the switch on' then 'turn on the lightbulb' would
        make the second task trivially succeed; both must key on the switch."""
        switch_task = task_by_instruction("turn the switch on")
        bulb_task = task_by_instruction("turn on the lightbulb")
        assert _task_resources(switch_task) & _task_resources(bulb_task)

    def test_two_resource_tasks_cannot_exhaust_the_job(self):
        """The feasibility guard: greedy draws never deadlock the sampler
        even when stack/place tasks consume two resources each."""
        for seed in range(100):
            assert len(sample_job(np.random.default_rng(seed), 6)) == 6

    def test_infeasible_length_raises(self):
        with pytest.raises(ValueError, match="distinct scene resources"):
            sample_job(np.random.default_rng(0), 7)


class TestRotateWrapRegression:
    """Bugfix: the rotate predicate compared raw yaw deltas; endpoints that
    straddle the +-pi seam (one canonicalised) flipped the measured sign."""

    @staticmethod
    def _scenes_with_yaws(initial_yaw, current_yaw):
        initial = sample_scene(SEEN_LAYOUT, np.random.default_rng(3))
        current = initial.copy()
        initial.blocks["red"].yaw = initial_yaw
        current.blocks["red"].yaw = current_yaw
        return initial, current

    def test_left_rotation_across_seam(self):
        task = task_by_instruction("rotate the red block to the left")
        # 75 degrees left from just below +pi, stored canonicalised: the raw
        # delta is about -4.9 rad and the old predicate scored it as a right
        # rotation (failure).
        initial_yaw = 3.0
        current_yaw = wrap_angle(initial_yaw + 1.3)
        assert current_yaw < 0  # the seam was actually crossed
        initial, current = self._scenes_with_yaws(initial_yaw, current_yaw)
        assert task.success(initial, current)

    def test_right_rotation_across_seam(self):
        task = task_by_instruction("rotate the red block to the right")
        initial_yaw = -3.0
        current_yaw = wrap_angle(initial_yaw - 1.3)
        assert current_yaw > 0
        initial, current = self._scenes_with_yaws(initial_yaw, current_yaw)
        assert task.success(initial, current)

    def test_wrong_direction_still_fails_across_seam(self):
        task = task_by_instruction("rotate the red block to the left")
        initial, current = self._scenes_with_yaws(-3.0, wrap_angle(-3.0 - 1.3))
        assert not task.success(initial, current)

    @pytest.mark.parametrize("angle", [-9.0, -np.pi, -0.5, 0.0, 0.5, np.pi, 9.0])
    def test_wrap_angle_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi
        assert np.isclose(np.sin(wrapped), np.sin(angle))
        assert np.isclose(np.cos(wrapped), np.cos(angle))


class TestPushMechanics:
    def test_low_sweep_shoves_a_block(self):
        env = make_env()
        env.reset(task_by_instruction("push the red block to the right"))
        block = env.scene.blocks["red"]
        start_x = float(block.position[0])
        y = float(block.position[1])
        goto(env, [start_x - 0.06, y, 0.035])
        # Sweep through the block with frame-sized command increments, as a
        # rendered trajectory would (a teleporting target never collides).
        for x in np.linspace(start_x - 0.06, start_x + 0.08, 30):
            env.step(np.array([x, y, 0.035, 0.0, 0.0, 0.0]), True)
        assert env.scene.blocks["red"].position[0] > start_x + 0.05
        assert env.succeeded

    def test_high_sweep_does_not_move_blocks(self):
        env = make_env()
        env.reset(task_by_instruction("push the red block to the right"))
        block_before = env.scene.blocks["red"].position.copy()
        above = block_before + np.array([-0.06, 0.0, 0.0])
        above[2] = 0.12
        goto(env, above)
        goto(env, [above[0] + 0.14, above[1], 0.12], steps=40)
        assert np.array_equal(env.scene.blocks["red"].position, block_before)

    def test_grasp_descent_does_not_expel_the_target(self):
        """The deadzone: descending straight onto a block (planar ~ 0) must
        not shove it out from under the gripper."""
        env = make_env()
        env.reset(task_by_instruction("lift the red block"))
        block_before = env.scene.blocks["red"].position.copy()
        goto(env, [block_before[0], block_before[1], 0.03])
        assert np.allclose(env.scene.blocks["red"].position[:2], block_before[:2])

    def test_push_expert_oracle(self):
        for instruction in (
            "push the red block to the left",
            "push the pink block to the right",
        ):
            env = make_env(seed=5)
            task = task_by_instruction(instruction)
            env.reset(task)
            assert run_expert(env, task)


class TestStackingMechanics:
    def test_release_on_support_stacks(self):
        env = make_env()
        task = task_by_instruction("stack the red block on top of the blue block")
        env.reset(task)
        red = env.scene.blocks["red"].position.copy()
        blue = env.scene.blocks["blue"].position.copy()
        goto(env, [red[0], red[1], 0.03])
        goto(env, [red[0], red[1], 0.03], gripper_open=False, steps=2)
        assert env.scene.attached == "red"
        goto(env, [red[0], red[1], 0.18], gripper_open=False)
        goto(env, [blue[0], blue[1], 0.18], gripper_open=False)
        goto(env, [blue[0], blue[1], 0.08], gripper_open=False)
        goto(env, [blue[0], blue[1], 0.08], gripper_open=True, steps=2)
        stacked_z = env.scene.blocks["red"].position[2]
        assert stacked_z == pytest.approx(
            env.scene.blocks["blue"].position[2] + 0.05
        )
        assert env.succeeded

    def test_release_away_from_support_lands_on_table(self):
        env = make_env()
        env.reset(task_by_instruction("lift the red block"))
        red = env.scene.blocks["red"].position.copy()
        goto(env, [red[0], red[1], 0.03])
        goto(env, [red[0], red[1], 0.03], gripper_open=False, steps=2)
        goto(env, [red[0], red[1], 0.2], gripper_open=False)
        goto(env, [red[0], red[1], 0.2], gripper_open=True, steps=2)
        assert env.scene.blocks["red"].position[2] == pytest.approx(0.02)

    def test_unstack_prepare_stacks_the_scene(self):
        env = make_env()
        env.reset(task_by_instruction("take off the red block from the blue block"))
        red = env.scene.blocks["red"].position
        blue = env.scene.blocks["blue"].position
        assert np.allclose(red[:2], blue[:2])
        assert red[2] == pytest.approx(blue[2] + 0.05)

    def test_stack_then_unstack_expert_chain(self):
        env = make_env(seed=11)
        stack = task_by_instruction("stack the red block on top of the blue block")
        unstack = task_by_instruction("take off the red block from the blue block")
        env.reset(stack)
        assert run_expert(env, stack)
        env.continue_with(unstack)
        assert run_expert(env, unstack)


class TestDrawerBasin:
    def test_release_over_open_basin_drops_in(self):
        env = make_env()
        task = task_by_instruction("place the red block in the drawer")
        env.reset(task)
        assert env.scene.drawer.opening > 0.12  # prepare opened it
        red = env.scene.blocks["red"].position.copy()
        basin = env.scene.drawer.basin_position
        goto(env, [red[0], red[1], 0.03])
        goto(env, [red[0], red[1], 0.03], gripper_open=False, steps=2)
        goto(env, [red[0], red[1], 0.12], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.12], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.07], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.07], gripper_open=True, steps=2)
        assert env.scene.blocks["red"].position[2] == pytest.approx(0.005)
        assert env.succeeded

    def test_basin_resting_block_cannot_be_shoved_out(self):
        """A low sweep past the basin must not drag a placed block sideways
        through the drawer wall (the shove only acts on table-level blocks)."""
        env = make_env()
        task = task_by_instruction("place the red block in the drawer")
        env.reset(task)
        red = env.scene.blocks["red"].position.copy()
        basin = env.scene.drawer.basin_position
        goto(env, [red[0], red[1], 0.03])
        goto(env, [red[0], red[1], 0.03], gripper_open=False, steps=2)
        goto(env, [red[0], red[1], 0.12], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.07], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.07], gripper_open=True, steps=2)
        assert env.succeeded
        placed = env.scene.blocks["red"].position.copy()
        # Graze the basin at shove height, frame-sized increments.
        for x in np.linspace(basin[0] - 0.08, basin[0] + 0.08, 20):
            env.step(np.array([x, basin[1], 0.04, 0.0, 0.0, 0.0]), True)
        assert np.array_equal(env.scene.blocks["red"].position, placed)
        assert env.succeeded

    def test_closed_drawer_basin_is_inert(self):
        env = make_env()
        env.reset(task_by_instruction("lift the red block"))
        env.scene.drawer.opening = 0.0
        basin = env.scene.drawer.basin_position
        red = env.scene.blocks["red"].position.copy()
        goto(env, [red[0], red[1], 0.03])
        goto(env, [red[0], red[1], 0.03], gripper_open=False, steps=2)
        goto(env, [red[0], red[1], 0.15], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.15], gripper_open=False)
        goto(env, [basin[0], basin[1], 0.15], gripper_open=True, steps=2)
        assert env.scene.blocks["red"].position[2] == pytest.approx(0.02)


class TestButtonLed:
    def test_press_toggles_once_and_latches(self):
        env = make_env()
        task = task_by_instruction("turn on the led")
        env.reset(task)
        assert not env.scene.button.led_on  # prepare turned it off
        button = env.scene.button.position
        goto(env, [button[0], button[1], 0.12])
        goto(env, [button[0], button[1], 0.035], steps=20)
        assert env.scene.button.led_on
        # Holding contact must not re-toggle.
        goto(env, [button[0], button[1], 0.035], steps=10)
        assert env.scene.button.led_on
        assert env.succeeded

    def test_second_press_toggles_back(self):
        env = make_env()
        env.reset(task_by_instruction("turn on the led"))
        button = env.scene.button.position
        goto(env, [button[0], button[1], 0.035], steps=25)
        assert env.scene.button.led_on
        goto(env, [button[0], button[1], 0.15])
        assert not env.scene.button.contact
        goto(env, [button[0], button[1], 0.035], steps=25)
        assert not env.scene.button.led_on

    def test_faraway_motion_never_presses(self):
        env = make_env()
        env.reset(task_by_instruction("turn on the led"))
        goto(env, [0.0, 0.0, 0.03], steps=10)
        goto(env, [0.1, -0.1, 0.2], steps=10)
        assert not env.scene.button.led_on


@pytest.mark.parametrize(
    "instruction", [task.instruction for task in TASKS]
)
class TestExpertOracleProperty:
    """Every task's expert keyframes must achieve its own success predicate
    from sampled scenes -- the property the CI suite gate enforces at scale."""

    def test_seen_layout(self, instruction):
        task = task_by_instruction(instruction)
        for seed in (0, 1):
            env = make_env(SEEN_LAYOUT, seed)
            env.reset(task)
            assert run_expert(env, task), f"{instruction} (seed {seed})"

    def test_unseen_layout(self, instruction):
        task = task_by_instruction(instruction)
        env = make_env(UNSEEN_LAYOUT, 2)
        env.reset(task)
        assert run_expert(env, task)


class TestFamilyReports:
    def test_expert_oracle_families_all_perfect(self):
        cells = expert_oracle_families(SEEN_LAYOUT, episodes_per_task=1)
        assert set(cells) == set(TASK_FAMILIES)
        for family, cell in cells.items():
            assert cell.success_rate == 1.0, cell
            assert cell.failed_instructions == ()
        assert sum(cell.episodes for cell in cells.values()) == len(TASKS)

    def test_policy_matrix_shape_and_fleet_size_invariance(self, tiny_policies):
        from repro.analysis.evaluation import TrainedPolicies

        baseline, corki, _ = tiny_policies
        policies = TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)
        small = evaluate_system_families(
            policies, "corki-5", SEEN_LAYOUT, episodes_per_task=1, fleet_size=5
        )
        large = evaluate_system_families(
            policies, "corki-5", SEEN_LAYOUT, episodes_per_task=1, fleet_size=64
        )
        assert set(small) == set(TASK_FAMILIES)
        for family in TASK_FAMILIES:
            assert small[family].episodes == len(tasks_by_family(family))
            assert small[family].successes == large[family].successes
            assert small[family].failed_instructions == large[family].failed_instructions


class TestSuiteCli:
    def test_suite_passes(self, capsys):
        from repro.cli import main

        assert main(["suite", "--episodes", "1", "--layout", "seen"]) == 0
        out = capsys.readouterr().out
        assert "expert-oracle task-suite gate" in out
        assert "unstack" in out

    def test_suite_runs_alone(self, capsys):
        from repro.cli import main

        assert main(["suite", "tbl1"]) == 2

    def test_suite_rejects_bad_episodes(self, capsys):
        from repro.cli import main

        assert main(["suite", "--episodes", "0"]) == 2
