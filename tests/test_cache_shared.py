"""Concurrency tests for the shared on-disk cache tier.

``docs/serving.md`` promises that several server processes may mount one
cache directory.  The guarantees under test: a read never observes a
**torn** payload (interleaved bytes from two writers of the same key), a
read never observes a **cross-keyed** payload (another key's bytes served
under this one), and losing an unlink-vs-read race to a concurrent
eviction is a miss -- never an exception.  The negative case reuses the
PR 7 corrupt-read fault domain to prove the torn-payload *detector* fires
when a payload really is truncated.

Real processes, real disk: the racing workers run in ``spawn``-context
processes (module-level functions, per the SPAWN-SAFE contract) mounting
the same directory, with payloads *tagged* so any mixing is detectable --
every field of every trace encodes the writer's tag, so a payload that
decodes at all must decode to exactly one writer's bytes.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.runner import EpisodeTrace
from repro.reliability import FaultPlan
from repro.serving.cache import ResultCache, decode_traces, encode_traces

_SHARED_KEY = "ab" * 32
_KEY_A = "0a" * 32
_KEY_B = "0b" * 32
_ROUNDS = 20


def tagged_traces(tag: int) -> list[EpisodeTrace]:
    """Two traces whose every field is a function of ``tag``: a torn or
    cross-keyed payload cannot decode to any single tag's trace list."""
    fill = float(tag)
    return [
        EpisodeTrace(
            success=bool(tag % 2),
            frames=tag,
            executed_steps=[tag] * 5,
            ee_path=np.full((6, 3), fill),
            reference_path=np.full((6, 3), fill + 0.5),
            gripper_path=np.full(6, fill - 0.25),
        )
        for _ in range(2)
    ]


def tag_of(traces: list[EpisodeTrace]) -> int | None:
    """The single tag a trace list encodes, or ``None`` if inconsistent."""
    if len(traces) != 2:
        return None
    tag = traces[0].frames
    for trace in traces:
        consistent = (
            trace.frames == tag
            and trace.success == bool(tag % 2)
            and trace.executed_steps == [tag] * 5
            and bool(np.all(trace.ee_path == float(tag)))
            and bool(np.all(trace.reference_path == float(tag) + 0.5))
            and bool(np.all(trace.gripper_path == float(tag) - 0.25))
        )
        if not consistent:
            return None
    return tag


def _race_worker(cache_dir, my_key, other_key, tag, other_tag, barrier, queue):
    """One mounting process: write my tag under the shared key and my own
    key every round; read both the shared key and the *other* process's
    key through a cold cache (forcing disk reads).  Report anomalies."""
    writer = ResultCache(directory=cache_dir)
    barrier.wait(timeout=60)
    anomalies = []
    for _ in range(_ROUNDS):
        writer.put(_SHARED_KEY, tagged_traces(tag))
        writer.put(my_key, tagged_traces(tag))
        reader = ResultCache(directory=cache_dir)  # cold: reads hit the disk
        shared = reader.get(_SHARED_KEY)
        if shared is not None and tag_of(shared) not in (tag, other_tag):
            anomalies.append(("torn", tag_of(shared)))
        theirs = reader.get(other_key)
        if theirs is not None and tag_of(theirs) != other_tag:
            anomalies.append(("cross-keyed", tag_of(theirs)))
    queue.put((tag, anomalies, writer.stats()["corrupt"]))


def _churn_worker(cache_dir, rounds):
    """Evict in a tight loop: ``max_entries=1`` makes every other put evict
    (and unlink) the previous key, racing any concurrent reader."""
    cache = ResultCache(directory=cache_dir, max_entries=1)
    for _ in range(rounds):
        cache.put(_KEY_A, tagged_traces(3))
        cache.put(_KEY_B, tagged_traces(4))


class TestSharedMountRaces:
    def test_two_processes_racing_one_key_never_torn_or_cross_keyed(self, tmp_path):
        """Two spawn-context processes hammer put/get on the same key (and
        on each other's keys); no read may decode to a mixed payload."""
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_race_worker,
                args=(str(tmp_path), _KEY_A, _KEY_B, 3, 4, barrier, queue),
            ),
            ctx.Process(
                target=_race_worker,
                args=(str(tmp_path), _KEY_B, _KEY_A, 4, 3, barrier, queue),
            ),
        ]
        for worker in workers:
            worker.start()
        reports = [queue.get(timeout=300) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert sorted(report[0] for report in reports) == [3, 4]
        for _, anomalies, corrupt in reports:
            assert anomalies == []
            assert corrupt == 0  # atomic replace: no torn file ever detected
        # The settled state is readable and belongs to one of the writers.
        final = ResultCache(directory=tmp_path).get(_SHARED_KEY)
        assert final is not None and tag_of(final) in (3, 4)

    def test_reader_racing_evictions_misses_instead_of_raising(self, tmp_path):
        """While a child process churns evictions (unlinking entry files),
        cold reads of the churned keys are intact hits or clean misses."""
        ctx = multiprocessing.get_context("spawn")
        churner = ctx.Process(target=_churn_worker, args=(str(tmp_path), 200))
        churner.start()
        observed = {"hit": 0, "miss": 0}
        try:
            while churner.is_alive():
                reader = ResultCache(directory=tmp_path)
                got = reader.get(_KEY_A)
                if got is None:
                    observed["miss"] += 1
                else:
                    assert tag_of(got) == 3
                    observed["hit"] += 1
        finally:
            churner.join(timeout=120)
        assert churner.exitcode == 0
        assert observed["hit"] + observed["miss"] > 0

    def test_lock_sidecar_lives_in_the_mount(self, tmp_path):
        """The advisory lock is a sidecar in the shared directory itself,
        so every mounting process serialises on the same file."""
        cache = ResultCache(directory=tmp_path)
        cache.put(_KEY_A, tagged_traces(3))
        assert (tmp_path / ".lock").exists()
        assert (tmp_path / f"{_KEY_A}.npz").exists()


class TestCorruptReadDetector:
    def test_corrupt_read_domain_fires_across_mounts(self, tmp_path):
        """The negative case: with the PR 7 corrupt-read fault domain armed
        on one mount, a truly truncated payload is detected (evicted,
        reported as a miss) -- and the budget exhausted, the re-written
        entry round-trips byte-identically."""
        plan = FaultPlan(seed=5, cache_corrupt_rate=1.0)
        writer = ResultCache(directory=tmp_path)
        reader = ResultCache(directory=tmp_path, fault_plan=plan)
        traces = tagged_traces(7)
        writer.put(_KEY_A, traces)

        assert reader.get(_KEY_A) is None  # first read arrives truncated
        assert reader.stats()["corrupt"] == 1
        assert not (tmp_path / f"{_KEY_A}.npz").exists()  # evicted on disk

        writer.put(_KEY_A, traces)  # the re-roll re-caches
        recovered = reader.get(_KEY_A)  # read budget spent: served intact
        assert recovered is not None and tag_of(recovered) == 7
        assert encode_traces(recovered) == encode_traces(traces)

    def test_truncation_is_what_the_detector_detects(self):
        """Ground the fault model: a truncated encoding really fails to
        decode (rather than decoding to wrong-but-plausible traces)."""
        payload = encode_traces(tagged_traces(9))
        plan = FaultPlan(seed=5, cache_corrupt_rate=1.0)
        with pytest.raises(Exception):
            decode_traces(plan.truncate(payload))
