"""Cross-module property-based tests: physics, pipeline, and trajectory laws."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CubicTrajectory, fit_cubic
from repro.pipeline import simulate_baseline, simulate_corki
from repro.robot import forward_kinematics, mass_matrix, panda, rnea, solve_ik
from repro.robot.spatial import matrix_to_rpy, spatial_transform
from repro.sim.tasks import wrap_angle

_PANDA = panda()

configs = st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=7, max_size=7).map(
    lambda v: _PANDA.clamp_configuration(np.array(v))
)
velocities = st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=7, max_size=7).map(np.array)


class TestDynamicsLaws:
    @given(configs, velocities)
    def test_rnea_is_affine_in_qdd(self, q, qd):
        """tau(qdd) must be affine: tau(a+b) - tau(a) == tau(b) - tau(0)."""
        a = np.linspace(-0.5, 0.5, 7)
        b = np.linspace(0.3, -0.3, 7)
        tau_ab = rnea(_PANDA, q, qd, a + b)
        tau_a = rnea(_PANDA, q, qd, a)
        tau_b = rnea(_PANDA, q, qd, b)
        tau_0 = rnea(_PANDA, q, qd, np.zeros(7))
        assert np.allclose(tau_ab - tau_a, tau_b - tau_0, atol=1e-8)

    @given(configs, st.floats(-1.0, 1.0, allow_nan=False))
    def test_mass_matrix_invariant_to_base_yaw(self, q, delta):
        """Joint 1 rotates the whole arm about gravity; M(q) cannot change."""
        q2 = q.copy()
        q2[0] = np.clip(q2[0] + delta, _PANDA.q_lower[0], _PANDA.q_upper[0])
        assert np.allclose(mass_matrix(_PANDA, q), mass_matrix(_PANDA, q2), atol=1e-10)

    @given(configs, velocities)
    def test_coriolis_quadratic_in_velocity(self, q, qd):
        """h(q, s*qd) - g(q) must scale as s^2 (pure Coriolis/centrifugal)."""
        from repro.robot import bias_forces, gravity_forces

        gravity = gravity_forces(_PANDA, q)
        coriolis_1 = bias_forces(_PANDA, q, qd) - gravity
        coriolis_2 = bias_forces(_PANDA, q, 2.0 * qd) - gravity
        assert np.allclose(coriolis_2, 4.0 * coriolis_1, atol=1e-8)


class TestPipelineLaws:
    @given(st.lists(st.integers(1, 9), min_size=1, max_size=30))
    def test_frame_energy_is_sum_of_stages(self, steps):
        trace = simulate_corki(steps)
        for frame in trace.frames:
            assert frame.energy_j == pytest.approx(
                frame.inference_j + frame.control_j + frame.communication_j
            )

    @given(st.integers(1, 9), st.integers(1, 9))
    def test_longer_execution_never_slower(self, a, b):
        """Mean frame latency is monotone non-increasing in execution length."""
        short, long = sorted((a, b))
        trace_short = simulate_corki([short] * 18)
        trace_long = simulate_corki([long] * 18)
        assert trace_long.mean_latency_ms <= trace_short.mean_latency_ms + 1e-9

    @given(st.integers(10, 200))
    def test_baseline_latency_independent_of_length(self, frames):
        trace = simulate_baseline(frames)
        assert trace.mean_latency_ms == pytest.approx(249.4, rel=1e-6)


class TestKinematicLaws:
    @given(configs)
    def test_fk_ik_round_trip(self, q):
        """IK on an FK-generated pose must recover a pose-equivalent solution."""
        pose_matrix = forward_kinematics(_PANDA, q)
        target = np.concatenate([pose_matrix[:3, 3], matrix_to_rpy(pose_matrix[:3, :3])])
        result = solve_ik(_PANDA, target, q_initial=q)
        assert result.converged
        recovered = forward_kinematics(_PANDA, result.q)
        assert np.allclose(recovered[:3, 3], pose_matrix[:3, 3], atol=1e-3)

    @given(configs)
    def test_mass_matrix_is_spd(self, q):
        """M(q) must be symmetric positive definite for every configuration."""
        m = mass_matrix(_PANDA, q)
        assert np.allclose(m, m.T, atol=1e-10)
        np.linalg.cholesky(m)  # raises LinAlgError unless positive definite

    @given(
        st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=9, max_size=9),
        st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=9, max_size=9),
        st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=9, max_size=9),
    )
    def test_spatial_transform_composition_associative(self, a, b, c):
        """(X_a X_b) X_c == X_a (X_b X_c) for spatial motion transforms."""
        from repro.robot.spatial import rpy_to_matrix

        transforms = [
            spatial_transform(rpy_to_matrix(np.array(v[:3])), np.array(v[3:6]) + np.array(v[6:]))
            for v in (a, b, c)
        ]
        left = (transforms[0] @ transforms[1]) @ transforms[2]
        right = transforms[0] @ (transforms[1] @ transforms[2])
        assert np.allclose(left, right, atol=1e-10)

    @given(st.floats(-50.0, 50.0, allow_nan=False))
    def test_wrap_angle_seam(self, angle):
        """wrap_angle lands in (-pi, pi] and preserves the angle mod 2*pi."""
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi
        assert np.isclose(np.sin(wrapped), np.sin(angle), atol=1e-9)
        assert np.isclose(np.cos(wrapped), np.cos(angle), atol=1e-9)
        # The seam itself maps to +pi from both sides of the identification.
        assert wrap_angle(np.pi) == pytest.approx(np.pi)
        assert wrap_angle(-np.pi) == pytest.approx(np.pi)


class TestTrajectoryLaws:
    @given(
        st.lists(st.floats(-0.05, 0.05, allow_nan=False), min_size=54, max_size=54),
        st.integers(1, 8),
    )
    def test_waypoints_match_pose_at_step_times(self, flat, step):
        offsets = np.array(flat).reshape(9, 6)
        trajectory = CubicTrajectory(
            origin=np.zeros(6),
            coefficients=fit_cubic(offsets),
            duration=0.3,
            gripper_open=np.ones(9, dtype=bool),
        )
        waypoints = trajectory.waypoints()
        t = step * trajectory.step_dt
        assert np.allclose(waypoints[step - 1], trajectory.pose(t), atol=1e-9)

    @given(st.lists(st.floats(-0.05, 0.05, allow_nan=False), min_size=54, max_size=54))
    def test_fit_is_projection(self, flat):
        """Fitting already-cubic data reproduces it (idempotence)."""
        offsets = np.array(flat).reshape(9, 6)
        coefficients = fit_cubic(offsets)
        trajectory = CubicTrajectory(np.zeros(6), coefficients, 0.3, np.ones(9, dtype=bool))
        refit = fit_cubic(trajectory.waypoints() - np.zeros(6))
        assert np.allclose(refit, coefficients, atol=1e-7)
