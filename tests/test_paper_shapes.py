"""Regression tests pinning the paper-shape results that are fast to compute.

These are the qualitative claims EXPERIMENTS.md reports; pinning them here
means a refactor that silently breaks a reproduced shape fails the suite,
not just the documentation.
"""

import importlib

import pytest


class TestFig15Shape:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.analysis import threshold_sweep

        return threshold_sweep(
            thresholds=[0.0, 0.4, 0.8], trajectories=1, physics_hz=200.0
        )

    def test_speedup_monotone_in_threshold(self, sweep):
        speedups = [point.speedup for point in sweep]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_skip_rate_monotone(self, sweep):
        skips = [point.skip_rate for point in sweep]
        assert skips[0] == pytest.approx(0.0)
        assert skips[1] > 0.3  # paper: over 51% at the design point
        assert skips[2] > skips[1]

    def test_error_stays_small(self, sweep):
        """Paper: "the trajectory error remains minimal" across thresholds."""
        errors = [point.trajectory_error_cm for point in sweep]
        assert max(errors) < 2.0
        assert max(errors) < 1.5 * min(errors)


class TestSystemShapes:
    def test_corki5_sw_pair(self):
        """SW keeps Corki-5's algorithm but is slower end to end."""
        from repro.pipeline import SystemStages, simulate_corki

        fpga = simulate_corki([5] * 30)
        sw = simulate_corki([5] * 30, stages=SystemStages.corki(control="cpu"))
        assert 1.3 < sw.mean_latency_ms / fpga.mean_latency_ms < 2.0

    def test_inference_dominates_baseline(self):
        from repro.pipeline import simulate_baseline

        trace = simulate_baseline(50)
        breakdown = trace.latency_breakdown()
        assert breakdown["inference"] > breakdown["communication"] > breakdown["control"]

    def test_accelerator_meets_realtime(self):
        """Paper Sec. 2.2: 100 Hz control needs the accelerated path."""
        from repro import constants

        assert constants.CONTROL_FPGA_MS < 10.0  # fits a 100 Hz period
        assert constants.CONTROL_CPU_MS > 10.0  # the CPU path does not


class TestPublicApi:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.nn",
            "repro.robot",
            "repro.sim",
            "repro.accelerator",
            "repro.pipeline",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"

    def test_variations_cover_paper_set(self):
        from repro.core import VARIATIONS

        assert set(VARIATIONS) == {
            "corki-1", "corki-3", "corki-5", "corki-7", "corki-9",
            "corki-adap", "corki-sw",
        }
        assert VARIATIONS["corki-sw"].control == "cpu"
        assert VARIATIONS["corki-adap"].adaptive
