"""Tests for forward kinematics and the geometric Jacobian."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.robot import (
    end_effector_pose,
    end_effector_velocity,
    forward_kinematics,
    geometric_jacobian,
    jacobian_dot_qd,
    link_transforms,
    panda,
    two_link_planar,
)

_PANDA = panda()
_PLANAR = two_link_planar()

panda_configs = st.lists(
    st.floats(-1.2, 1.2, allow_nan=False), min_size=7, max_size=7
).map(lambda vals: _PANDA.clamp_configuration(np.array(vals)))


class TestForwardKinematics:
    def test_two_link_closed_form(self):
        """The planar arm's tip position has a textbook closed form."""
        q = np.array([0.4, 0.7])
        tip = forward_kinematics(_PLANAR, q)[:3, 3]
        length = 0.5
        expected_x = length * np.cos(q[0]) + length * np.cos(q[0] + q[1])
        expected_y = length * np.sin(q[0]) + length * np.sin(q[0] + q[1])
        assert np.allclose(tip, [expected_x, expected_y, 0.0], atol=1e-12)

    def test_link_count(self):
        transforms = link_transforms(_PANDA, _PANDA.q_home)
        assert len(transforms) == 7

    def test_wrong_configuration_shape_raises(self):
        with pytest.raises(ValueError):
            link_transforms(_PANDA, np.zeros(6))

    @given(panda_configs)
    def test_rotations_stay_orthonormal(self, q):
        for t in link_transforms(_PANDA, q):
            rotation = t[:3, :3]
            assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-9)

    @given(panda_configs)
    def test_joint1_only_spins_about_base_z(self, q):
        """Rotating joint 1 must not change the end-effector height."""
        pose_a = forward_kinematics(_PANDA, q)
        q2 = q.copy()
        q2[0] = np.clip(q2[0] + 0.3, _PANDA.q_lower[0], _PANDA.q_upper[0])
        pose_b = forward_kinematics(_PANDA, q2)
        assert np.isclose(pose_a[2, 3], pose_b[2, 3], atol=1e-9)

    def test_reach_is_bounded(self):
        """No configuration can reach beyond the sum of link offsets."""
        rng = np.random.default_rng(0)
        max_reach = 0.333 + 0.316 + 0.384 + 2 * 0.0825 + 0.088 + 0.107 + 0.1
        for _ in range(20):
            q = _PANDA.random_configuration(rng)
            position = forward_kinematics(_PANDA, q)[:3, 3]
            assert np.linalg.norm(position) < max_reach

    def test_end_effector_pose_vector(self):
        pose = end_effector_pose(_PANDA, _PANDA.q_home)
        assert pose.shape == (6,)
        transform = forward_kinematics(_PANDA, _PANDA.q_home)
        assert np.allclose(pose[:3], transform[:3, 3])


class TestJacobian:
    @given(panda_configs)
    def test_matches_finite_differences(self, q):
        jac = geometric_jacobian(_PANDA, q)
        eps = 1e-6
        for joint in range(7):
            dq = np.zeros(7)
            dq[joint] = eps
            forward = forward_kinematics(_PANDA, q + dq)[:3, 3]
            backward = forward_kinematics(_PANDA, q - dq)[:3, 3]
            assert np.allclose(jac[:3, joint], (forward - backward) / (2 * eps), atol=1e-5)

    def test_velocity_consistency(self, rng):
        q = _PANDA.q_home
        qd = rng.normal(size=7)
        twist = end_effector_velocity(_PANDA, q, qd)
        assert np.allclose(twist, geometric_jacobian(_PANDA, q) @ qd)

    def test_jdot_qd_matches_numeric_twist_derivative(self, rng):
        q = _PANDA.q_home
        qd = 0.5 * rng.normal(size=7)
        eps = 1e-6
        j_now = geometric_jacobian(_PANDA, q)
        j_next = geometric_jacobian(_PANDA, q + eps * qd)
        expected = (j_next - j_now) / eps @ qd
        assert np.allclose(jacobian_dot_qd(_PANDA, q, qd), expected, atol=1e-4)

    def test_jdot_qd_zero_velocity(self):
        assert np.allclose(jacobian_dot_qd(_PANDA, _PANDA.q_home, np.zeros(7)), np.zeros(6))

    def test_shape(self):
        assert geometric_jacobian(_PANDA, _PANDA.q_home).shape == (6, 7)
        assert geometric_jacobian(_PLANAR, np.zeros(2)).shape == (6, 2)
