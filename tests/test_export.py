"""Tests for experiment-report export and the CLI --save flag."""

import os

from repro.analysis.export import load_index, save_report


class TestExport:
    def test_save_writes_report_and_index(self, tmp_path):
        path = save_report("fig2", "hello\nworld", "quick", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "hello\nworld\n"
        index = load_index(str(tmp_path))
        assert index["fig2"]["file"] == "fig2-quick.txt"
        assert index["fig2"]["profile"] == "quick"

    def test_index_accumulates(self, tmp_path):
        save_report("fig2", "a", "quick", directory=str(tmp_path))
        save_report("tbl3", "b", "quick", directory=str(tmp_path))
        index = load_index(str(tmp_path))
        assert set(index) == {"fig2", "tbl3"}

    def test_resave_overwrites(self, tmp_path):
        save_report("fig2", "first", "quick", directory=str(tmp_path))
        path = save_report("fig2", "second", "quick", directory=str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "second\n"

    def test_empty_index(self, tmp_path):
        assert load_index(str(tmp_path)) == {}

    def test_cli_save_flag(self, tmp_path, monkeypatch, capsys):
        import repro.analysis.export as export_module
        from repro.cli import main

        monkeypatch.setattr(export_module, "default_artifact_dir", lambda: str(tmp_path))
        assert main(["resources", "--save"]) == 0
        out = capsys.readouterr().out
        assert "[saved" in out
        assert (tmp_path / "resources-quick.txt").exists()
