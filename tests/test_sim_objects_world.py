"""Tests for scene objects, layouts and scene sampling."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    BLOCK_NAMES,
    SEEN_LAYOUT,
    UNSEEN_LAYOUT,
    WORKSPACE,
    sample_scene,
)
from repro.sim.objects import Drawer, Switch


class TestObjects:
    def test_drawer_handle_tracks_opening(self):
        drawer = Drawer(handle_base=np.zeros(3), axis=np.array([0.0, -1.0, 0.0]))
        drawer.opening = 0.1
        assert np.allclose(drawer.handle_position, [0.0, -0.1, 0.0])

    def test_switch_light_thresholds(self):
        switch = Switch(handle_base=np.zeros(3), axis=np.array([1.0, 0.0, 0.0]))
        switch.level = 0.64
        assert not switch.light_on
        switch.level = 0.66
        assert switch.light_on

    def test_copy_is_deep(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        clone = scene.copy()
        clone.blocks["red"].position[0] += 1.0
        clone.drawer.opening = 0.17
        assert scene.blocks["red"].position[0] != clone.blocks["red"].position[0]
        assert scene.drawer.opening != clone.drawer.opening


class TestSceneSampling:
    @given(st.integers(0, 500))
    def test_blocks_spaced_and_in_region(self, seed):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(seed))
        positions = [scene.blocks[name].position for name in BLOCK_NAMES]
        for position in positions:
            assert np.all(position >= SEEN_LAYOUT.block_region_lower - 1e-9)
            assert np.all(position <= SEEN_LAYOUT.block_region_upper + 1e-9)
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                assert np.linalg.norm(positions[i][:2] - positions[j][:2]) > 0.08

    def test_layouts_differ(self):
        assert not np.allclose(SEEN_LAYOUT.drawer_handle, UNSEEN_LAYOUT.drawer_handle)
        assert UNSEEN_LAYOUT.camera_shift != SEEN_LAYOUT.camera_shift

    def test_workspace_clamp(self):
        point = np.array([10.0, -10.0, 0.0])
        clamped = WORKSPACE.clamp(point)
        assert np.all(clamped <= WORKSPACE.upper)
        assert np.all(clamped >= WORKSPACE.lower)

    def test_deterministic_given_seed(self):
        a = sample_scene(SEEN_LAYOUT, np.random.default_rng(7))
        b = sample_scene(SEEN_LAYOUT, np.random.default_rng(7))
        for name in BLOCK_NAMES:
            assert np.allclose(a.blocks[name].position, b.blocks[name].position)
