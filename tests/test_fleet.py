"""Seed-for-seed equivalence of the batched fleet engine.

The fleet runner must be a pure throughput optimisation: an episode rolled
inside an N-lane fleet is element-wise identical to the same episode rolled
by the single-episode runner from the same seeds.  Two mechanisms carry
that guarantee and these tests lock both in:

* every lane owns its environment and feedback generators, so no lane's
  randomness depends on its neighbours; and
* the batched policy entry points pad singleton batches
  (``repro.core.policy._pad_singleton``), so BLAS takes the same GEMM
  kernels whether one lane or thirty-two need inference on a tick.
"""

import numpy as np
import pytest

from repro.core import (
    VARIATIONS,
    FleetLane,
    FleetRunner,
    run_baseline_episode,
    run_baseline_fleet,
    run_corki_episode,
    run_corki_fleet,
    run_job,
)
from repro.sim import (
    BLOCK_NAMES,
    SEEN_LAYOUT,
    TASKS,
    WORKSPACE,
    BatchedManipulationEnv,
    CameraModel,
    ManipulationEnv,
    sample_scene,
)
from repro.sim.env import PERFECT_ACTUATION, TRACKING_100HZ, TRACKING_30HZ

FLEET_N = 6
MAX_FRAMES = 25


def _envs(seed_base: int, n: int = FLEET_N) -> list[ManipulationEnv]:
    return [
        ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed_base + i))
        for i in range(n)
    ]


def _tasks(n: int = FLEET_N):
    return [TASKS[i % len(TASKS)] for i in range(n)]


def _assert_traces_identical(single, fleet):
    assert single.success == fleet.success
    assert single.frames == fleet.frames
    assert single.executed_steps == fleet.executed_steps
    assert np.array_equal(single.ee_path, fleet.ee_path)
    assert np.array_equal(single.reference_path, fleet.reference_path)
    assert np.array_equal(single.gripper_path, fleet.gripper_path)


class TestBaselineEquivalence:
    def test_fleet_matches_sequential_singles(self, tiny_policies):
        baseline, _, _ = tiny_policies
        singles = [
            run_baseline_episode(env, baseline, task, max_frames=MAX_FRAMES)
            for env, task in zip(_envs(50), _tasks())
        ]
        fleet = run_baseline_fleet(_envs(50), baseline, _tasks(), max_frames=MAX_FRAMES)
        for single, batched in zip(singles, fleet):
            _assert_traces_identical(single, batched)


class TestCorkiEquivalence:
    @pytest.mark.parametrize("name", ["corki-5", "corki-adap"])
    def test_fleet_matches_sequential_singles(self, tiny_policies, name):
        """Fixed-step and Algorithm-1 adaptive lanes de-synchronise their
        inference frames inside the fleet; results must not change."""
        _, corki, _ = tiny_policies
        variation = VARIATIONS[name]
        singles = [
            run_corki_episode(
                env, corki, task, variation, np.random.default_rng(70 + i),
                max_frames=MAX_FRAMES,
            )
            for i, (env, task) in enumerate(zip(_envs(60), _tasks()))
        ]
        fleet = run_corki_fleet(
            _envs(60),
            corki,
            _tasks(),
            variation,
            [np.random.default_rng(70 + i) for i in range(FLEET_N)],
            max_frames=MAX_FRAMES,
        )
        for single, batched in zip(singles, fleet):
            _assert_traces_identical(single, batched)


class TestJobChainingEquivalence:
    def test_fleet_lane_matches_run_job(self, tiny_policies):
        """A multi-task lane chains tasks exactly like run_job: scene
        persists via continue_with, and the job stops at the first failure."""
        baseline, _, _ = tiny_policies
        job = [TASKS[0], TASKS[5], TASKS[9]]

        single_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(80))

        def episode(task, chained):
            return run_baseline_episode(
                single_env, baseline, task, max_frames=MAX_FRAMES, chained=chained
            )

        single_traces = run_job(single_env, job, episode)

        fleet_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(80))
        lane = FleetLane(tasks=job, max_frames=MAX_FRAMES)
        fleet_traces = FleetRunner(baseline=baseline).run([fleet_env], [lane])[0]

        assert len(single_traces) == len(fleet_traces)
        for single, batched in zip(single_traces, fleet_traces):
            _assert_traces_identical(single, batched)

    def test_corki_job_chaining(self, tiny_policies):
        _, corki, _ = tiny_policies
        job = [TASKS[1], TASKS[6]]
        variation = VARIATIONS["corki-5"]

        single_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(81))
        single_rng = np.random.default_rng(91)

        def episode(task, chained):
            return run_corki_episode(
                single_env, corki, task, variation, single_rng,
                max_frames=MAX_FRAMES, chained=chained,
            )

        single_traces = run_job(single_env, job, episode)

        fleet_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(81))
        lane = FleetLane(
            tasks=job, variation=variation,
            rng=np.random.default_rng(91), max_frames=MAX_FRAMES,
        )
        fleet_traces = FleetRunner(corki=corki).run([fleet_env], [lane])[0]

        assert len(single_traces) == len(fleet_traces)
        for single, batched in zip(single_traces, fleet_traces):
            _assert_traces_identical(single, batched)


class TestMixedFleet:
    def test_baseline_and_corki_lanes_share_a_fleet(self, tiny_policies):
        """A heterogeneous fleet batches each policy kind separately and
        still reproduces every lane's standalone episode."""
        baseline, corki, _ = tiny_policies
        variation = VARIATIONS["corki-5"]

        single_base = run_baseline_episode(
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(100)),
            baseline, TASKS[0], max_frames=MAX_FRAMES,
        )
        single_corki = run_corki_episode(
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(101)),
            corki, TASKS[1], variation, np.random.default_rng(111),
            max_frames=MAX_FRAMES,
        )

        envs = [
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(100)),
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(101)),
        ]
        lanes = [
            FleetLane(tasks=[TASKS[0]], max_frames=MAX_FRAMES),
            FleetLane(
                tasks=[TASKS[1]], variation=variation,
                rng=np.random.default_rng(111), max_frames=MAX_FRAMES,
            ),
        ]
        traces = FleetRunner(baseline=baseline, corki=corki).run(envs, lanes)
        _assert_traces_identical(single_base, traces[0][0])
        _assert_traces_identical(single_corki, traces[1][0])


class TestBatchedEnvFacade:
    def test_step_many_shapes_and_masks(self, rng):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2, 3])
        assert len(fleet) == 3
        observations = fleet.reset_many([TASKS[0], TASKS[1], TASKS[2]])
        assert observations.shape[0] == 3
        targets = np.stack([env.scene.ee_pose for env in fleet.envs])
        stepped = fleet.step_many(targets, [True, True, False])
        assert stepped.shape == observations.shape
        assert fleet.succeeded_mask().shape == (3,)

    def test_indices_select_lanes(self):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2, 3])
        fleet.reset_many([TASKS[0], TASKS[1], TASKS[2]])
        before = fleet.envs[1].scene.ee_pose.copy()
        targets = np.stack([fleet.envs[i].scene.ee_pose + 0.01 for i in (0, 2)])
        fleet.step_many(targets, [True, True], indices=[0, 2])
        # Lane 1 was not selected, so its arm never moved.
        assert np.array_equal(fleet.envs[1].scene.ee_pose, before)
        assert fleet.envs[0].frame_count == 1 and fleet.envs[2].frame_count == 1

    def test_validates_lane_counts(self):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2])
        with pytest.raises(ValueError):
            fleet.reset_many([TASKS[0]])
        with pytest.raises(ValueError):
            BatchedManipulationEnv([])
        fleet.reset_many([TASKS[0], TASKS[1]])
        targets = np.stack([env.scene.ee_pose for env in fleet.envs])
        with pytest.raises(ValueError, match="gripper flag"):
            fleet.step_many(targets, [True])
        with pytest.raises(ValueError, match="actuation model"):
            fleet.step_many(targets, [True, True], actuation=[fleet.envs[0].actuation])


class _ScalarReferenceEnv:
    """An object-at-a-time scalar environment, kept as a test oracle.

    This is the ``ManipulationEnv`` semantics written as plain ``SceneState``
    mutation, one Python-level step per frame -- originally frozen from the
    pre-structure-of-arrays code, extended in lock-step when the task-suite
    PR added shove/settle/button mechanics.  The vectorised ``step_many``
    must reproduce it bit for bit, per lane, at any fleet size -- the
    tentpole guarantee of the SoA refactor.
    """

    frame_dt = 1.0 / 30.0
    _BLOCK_GRASP_RADIUS = 0.05
    _BLOCK_GRASP_HEIGHT = 0.05
    _TABLE_BLOCK_Z = 0.02
    _PUSH_RADIUS = 0.048
    _PUSH_DEADZONE = 0.02
    _PUSH_EE_HEIGHT = 0.06
    _PUSH_BLOCK_MIN_Z = 0.015
    _PUSH_BLOCK_MAX_Z = 0.03
    _STACK_SNAP_RADIUS = 0.04
    _BASIN_RADIUS = 0.06
    _BASIN_MIN_OPENING = 0.10
    _BASIN_FLOOR_Z = 0.005

    def __init__(self, layout, rng, actuation=TRACKING_100HZ, camera_noise_std=0.01):
        self.layout = layout
        self.rng = rng
        self.actuation = actuation
        self.camera = CameraModel(noise_std=camera_noise_std, domain_shift=layout.camera_shift)
        self.scene = None
        self.initial_scene = None
        self.task = None
        self.frame_count = 0

    def reset(self, task):
        scene = sample_scene(self.layout, self.rng)
        task.prepare(scene, self.rng)
        self.scene = scene
        self.initial_scene = scene.copy()
        self.task = task
        self.frame_count = 0
        return self.camera.render(self.scene, self.rng)

    @property
    def succeeded(self):
        return bool(self.task.success(self.initial_scene, self.scene))

    def step(self, target_pose, gripper_open, actuation=None):
        model = actuation or self.actuation
        scene = self.scene
        target = np.asarray(target_pose, dtype=float)
        displacement = target - scene.ee_pose
        realised = model.tracking_gain * displacement
        if model.noise_std > 0.0:
            noise = self.rng.normal(0.0, model.noise_std, size=6)
            noise[3:] *= 2.0
            realised = realised + noise
        new_pose = scene.ee_pose + realised
        new_pose[:3] = WORKSPACE.clamp(new_pose[:3])
        delta_yaw = new_pose[5] - scene.ee_pose[5]
        scene.ee_pose = new_pose
        self._update_gripper(gripper_open)
        self._drag_attached(delta_yaw)
        self._push_blocks()
        self._update_button()
        self.frame_count += 1
        return self.camera.render(self.scene, self.rng)

    def _update_gripper(self, gripper_open):
        scene = self.scene
        if gripper_open and not scene.gripper_open:
            self._release()
            scene.gripper_open = True
        elif not gripper_open and scene.gripper_open:
            scene.gripper_open = False
            self._try_grasp()

    def _try_grasp(self):
        scene = self.scene
        ee = scene.ee_pose[:3]
        best_name, best_distance = None, np.inf
        for name, block in scene.blocks.items():
            planar = float(np.linalg.norm(block.position[:2] - ee[:2]))
            vertical = abs(block.position[2] - ee[2] + 0.01)
            if planar <= self._BLOCK_GRASP_RADIUS and vertical <= self._BLOCK_GRASP_HEIGHT:
                if planar < best_distance:
                    best_name, best_distance = name, planar
        drawer_distance = float(np.linalg.norm(scene.drawer.handle_position - ee))
        if drawer_distance <= scene.drawer.grasp_radius and drawer_distance < best_distance:
            best_name, best_distance = "drawer", drawer_distance
        switch_distance = float(np.linalg.norm(scene.switch.handle_position - ee))
        if switch_distance <= scene.switch.grasp_radius and switch_distance < best_distance:
            best_name, best_distance = "switch", switch_distance
        scene.attached = best_name

    def _release(self):
        scene = self.scene
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position[2] = self._settle_height(scene.attached)
        scene.attached = None

    def _settle_height(self, name):
        scene = self.scene
        block = scene.blocks[name]
        drawer = scene.drawer
        if drawer.opening >= self._BASIN_MIN_OPENING:
            basin = drawer.basin_position
            if float(np.linalg.norm(block.position[:2] - basin[:2])) <= self._BASIN_RADIUS:
                return self._BASIN_FLOOR_Z
        best_height, best_distance = None, np.inf
        for other_name, other in scene.blocks.items():
            if other_name == name:
                continue
            planar = float(np.linalg.norm(other.position[:2] - block.position[:2]))
            top = other.position[2] + other.half_extent
            if (
                planar <= self._STACK_SNAP_RADIUS
                and planar < best_distance
                and top <= block.position[2] + 1e-9
            ):
                best_height = top + block.half_extent
                best_distance = planar
        return self._TABLE_BLOCK_Z if best_height is None else float(best_height)

    def _push_blocks(self):
        scene = self.scene
        ee = scene.ee_pose
        if ee[2] > self._PUSH_EE_HEIGHT:
            return
        for name, block in scene.blocks.items():
            if scene.attached == name:
                continue
            if not (self._PUSH_BLOCK_MIN_Z <= block.position[2] <= self._PUSH_BLOCK_MAX_Z):
                continue
            offset = block.position[:2] - ee[:2]
            planar = float(np.sqrt(offset[0] * offset[0] + offset[1] * offset[1]))
            if self._PUSH_DEADZONE < planar < self._PUSH_RADIUS:
                shoved = ee[:2] + offset / planar * self._PUSH_RADIUS
                block.position[0] = shoved[0]
                block.position[1] = shoved[1]

    def _update_button(self):
        scene = self.scene
        button = scene.button
        ee = scene.ee_pose
        offset = button.position[:2] - ee[:2]
        planar = float(np.sqrt(offset[0] * offset[0] + offset[1] * offset[1]))
        contact = planar <= button.press_radius and ee[2] <= button.press_height
        if contact and not button.contact:
            button.led_on = not button.led_on
        button.contact = contact

    def _drag_attached(self, delta_yaw):
        scene = self.scene
        if scene.attached is None:
            return
        ee = scene.ee_pose[:3]
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position = ee + np.array([0.0, 0.0, -0.01])
            block.yaw += delta_yaw
        elif scene.attached == "drawer":
            drawer = scene.drawer
            along = float(np.dot(ee - drawer.handle_base, drawer.axis))
            drawer.opening = float(np.clip(along, 0.0, drawer.max_opening))
        elif scene.attached == "switch":
            switch = scene.switch
            along = float(np.dot(ee - switch.handle_base, switch.axis)) / switch.travel
            switch.level = float(np.clip(along, 0.0, 1.0))


class TestVectorizedKernelEquivalence:
    """step_many must be seed-for-seed the frozen scalar implementation."""

    N = 6
    FRAMES = 60

    @staticmethod
    def _command(env, rng):
        """One pseudo-random command: a free-space wander, or (one draw in
        four) a low dive at a block or the button so the shove, settle and
        button-press mechanics all fire during the equivalence drive."""
        if rng.integers(0, 4) == 0:
            pick = int(rng.integers(0, 4))
            anchor = (
                env.scene.blocks[BLOCK_NAMES[pick]].position
                if pick < len(BLOCK_NAMES)
                else env.scene.button.position
            )
            target = np.zeros(6)
            target[:3] = anchor + rng.normal(0.0, 0.03, 3)
            target[2] = 0.03 + abs(rng.normal(0.0, 0.02))
            target[3:] = env.scene.ee_pose[3:] + rng.normal(0.0, 0.05, 3)
            return target
        return env.scene.ee_pose + rng.normal(0.0, 0.03, 6)

    def _drive(self, env_factory, step):
        """Roll N lanes with shared pseudo-random commands; returns frames."""
        envs = [env_factory(i) for i in range(self.N)]
        tasks = [TASKS[(3 * i) % len(TASKS)] for i in range(self.N)]
        observations = [[env.reset(task)] for env, task in zip(envs, tasks)]
        command_rngs = [np.random.default_rng(900 + i) for i in range(self.N)]
        models = [
            [TRACKING_100HZ, TRACKING_30HZ, PERFECT_ACTUATION][i % 3]
            for i in range(self.N)
        ]
        for _ in range(self.FRAMES):
            targets = np.stack(
                [self._command(envs[i], command_rngs[i]) for i in range(self.N)]
            )
            grippers = [bool(command_rngs[i].integers(0, 2)) for i in range(self.N)]
            stepped = step(envs, targets, grippers, models)
            for i in range(self.N):
                observations[i].append(stepped[i])
        return envs, [np.array(o) for o in observations]

    def test_step_many_matches_frozen_scalar_reference(self):
        def scalar_factory(i):
            return _ScalarReferenceEnv(SEEN_LAYOUT, np.random.default_rng(7000 + i))

        def scalar_step(envs, targets, grippers, models):
            return [
                env.step(target, gripper, model)
                for env, target, gripper, model in zip(envs, targets, grippers, models)
            ]

        fleet_holder = {}

        def batched_factory(i):
            return ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(7000 + i))

        def batched_step(envs, targets, grippers, models):
            if "fleet" not in fleet_holder:
                fleet_holder["fleet"] = BatchedManipulationEnv(envs)
            return fleet_holder["fleet"].step_many(targets, grippers, models)

        scalar_envs, scalar_obs = self._drive(scalar_factory, scalar_step)
        batched_envs, batched_obs = self._drive(batched_factory, batched_step)

        for i in range(self.N):
            assert np.array_equal(scalar_obs[i], batched_obs[i]), f"lane {i} observations"
            ref, new = scalar_envs[i].scene, batched_envs[i].scene
            assert np.array_equal(ref.ee_pose, new.ee_pose)
            assert ref.gripper_open == new.gripper_open
            assert ref.attached == new.attached
            for name in ref.blocks:
                assert np.array_equal(ref.blocks[name].position, new.blocks[name].position)
                assert ref.blocks[name].yaw == new.blocks[name].yaw
            assert ref.drawer.opening == new.drawer.opening
            assert ref.switch.level == new.switch.level
            assert ref.button.led_on == new.button.led_on
            assert ref.button.contact == new.button.contact
            assert scalar_envs[i].succeeded == batched_envs[i].succeeded

    def test_standalone_step_is_the_batched_kernel(self):
        """A standalone env (fleet of one) matches the frozen scalar oracle."""
        reference = _ScalarReferenceEnv(SEEN_LAYOUT, np.random.default_rng(11))
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(11))
        ref_obs = reference.reset(TASKS[4])
        new_obs = env.reset(TASKS[4])
        assert np.array_equal(ref_obs, new_obs)
        commands = np.random.default_rng(12)
        for _ in range(self.FRAMES):
            target = env.scene.ee_pose + commands.normal(0.0, 0.03, 6)
            gripper = bool(commands.integers(0, 2))
            assert np.array_equal(
                reference.step(target, gripper), env.step(target, gripper)
            )


class TestLaneValidation:
    def test_closed_loop_corki_lane_requires_rng(self):
        with pytest.raises(ValueError):
            FleetLane(tasks=[TASKS[0]], variation=VARIATIONS["corki-5"])

    def test_lane_requires_tasks(self):
        with pytest.raises(ValueError):
            FleetLane(tasks=[])

    def test_runner_requires_matching_policies(self, tiny_policies):
        baseline, _, _ = tiny_policies
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
        lane = FleetLane(
            tasks=[TASKS[0]], variation=VARIATIONS["corki-5"],
            rng=np.random.default_rng(1),
        )
        with pytest.raises(ValueError):
            FleetRunner(baseline=baseline).run([env], [lane])
