"""Seed-for-seed equivalence of the batched fleet engine.

The fleet runner must be a pure throughput optimisation: an episode rolled
inside an N-lane fleet is element-wise identical to the same episode rolled
by the single-episode runner from the same seeds.  Two mechanisms carry
that guarantee and these tests lock both in:

* every lane owns its environment and feedback generators, so no lane's
  randomness depends on its neighbours; and
* the batched policy entry points pad singleton batches
  (``repro.core.policy._pad_singleton``), so BLAS takes the same GEMM
  kernels whether one lane or thirty-two need inference on a tick.
"""

import numpy as np
import pytest

from repro.core import (
    FleetLane,
    FleetRunner,
    VARIATIONS,
    run_baseline_episode,
    run_baseline_fleet,
    run_corki_episode,
    run_corki_fleet,
    run_job,
)
from repro.sim import (
    BatchedManipulationEnv,
    SEEN_LAYOUT,
    TASKS,
    ManipulationEnv,
)

FLEET_N = 6
MAX_FRAMES = 25


def _envs(seed_base: int, n: int = FLEET_N) -> list[ManipulationEnv]:
    return [
        ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed_base + i))
        for i in range(n)
    ]


def _tasks(n: int = FLEET_N):
    return [TASKS[i % len(TASKS)] for i in range(n)]


def _assert_traces_identical(single, fleet):
    assert single.success == fleet.success
    assert single.frames == fleet.frames
    assert single.executed_steps == fleet.executed_steps
    assert np.array_equal(single.ee_path, fleet.ee_path)
    assert np.array_equal(single.reference_path, fleet.reference_path)
    assert np.array_equal(single.gripper_path, fleet.gripper_path)


class TestBaselineEquivalence:
    def test_fleet_matches_sequential_singles(self, tiny_policies):
        baseline, _, _ = tiny_policies
        singles = [
            run_baseline_episode(env, baseline, task, max_frames=MAX_FRAMES)
            for env, task in zip(_envs(50), _tasks())
        ]
        fleet = run_baseline_fleet(_envs(50), baseline, _tasks(), max_frames=MAX_FRAMES)
        for single, batched in zip(singles, fleet):
            _assert_traces_identical(single, batched)


class TestCorkiEquivalence:
    @pytest.mark.parametrize("name", ["corki-5", "corki-adap"])
    def test_fleet_matches_sequential_singles(self, tiny_policies, name):
        """Fixed-step and Algorithm-1 adaptive lanes de-synchronise their
        inference frames inside the fleet; results must not change."""
        _, corki, _ = tiny_policies
        variation = VARIATIONS[name]
        singles = [
            run_corki_episode(
                env, corki, task, variation, np.random.default_rng(70 + i),
                max_frames=MAX_FRAMES,
            )
            for i, (env, task) in enumerate(zip(_envs(60), _tasks()))
        ]
        fleet = run_corki_fleet(
            _envs(60),
            corki,
            _tasks(),
            variation,
            [np.random.default_rng(70 + i) for i in range(FLEET_N)],
            max_frames=MAX_FRAMES,
        )
        for single, batched in zip(singles, fleet):
            _assert_traces_identical(single, batched)


class TestJobChainingEquivalence:
    def test_fleet_lane_matches_run_job(self, tiny_policies):
        """A multi-task lane chains tasks exactly like run_job: scene
        persists via continue_with, and the job stops at the first failure."""
        baseline, _, _ = tiny_policies
        job = [TASKS[0], TASKS[5], TASKS[9]]

        single_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(80))

        def episode(task, chained):
            return run_baseline_episode(
                single_env, baseline, task, max_frames=MAX_FRAMES, chained=chained
            )

        single_traces = run_job(single_env, job, episode)

        fleet_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(80))
        lane = FleetLane(tasks=job, max_frames=MAX_FRAMES)
        fleet_traces = FleetRunner(baseline=baseline).run([fleet_env], [lane])[0]

        assert len(single_traces) == len(fleet_traces)
        for single, batched in zip(single_traces, fleet_traces):
            _assert_traces_identical(single, batched)

    def test_corki_job_chaining(self, tiny_policies):
        _, corki, _ = tiny_policies
        job = [TASKS[1], TASKS[6]]
        variation = VARIATIONS["corki-5"]

        single_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(81))
        single_rng = np.random.default_rng(91)

        def episode(task, chained):
            return run_corki_episode(
                single_env, corki, task, variation, single_rng,
                max_frames=MAX_FRAMES, chained=chained,
            )

        single_traces = run_job(single_env, job, episode)

        fleet_env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(81))
        lane = FleetLane(
            tasks=job, variation=variation,
            rng=np.random.default_rng(91), max_frames=MAX_FRAMES,
        )
        fleet_traces = FleetRunner(corki=corki).run([fleet_env], [lane])[0]

        assert len(single_traces) == len(fleet_traces)
        for single, batched in zip(single_traces, fleet_traces):
            _assert_traces_identical(single, batched)


class TestMixedFleet:
    def test_baseline_and_corki_lanes_share_a_fleet(self, tiny_policies):
        """A heterogeneous fleet batches each policy kind separately and
        still reproduces every lane's standalone episode."""
        baseline, corki, _ = tiny_policies
        variation = VARIATIONS["corki-5"]

        single_base = run_baseline_episode(
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(100)),
            baseline, TASKS[0], max_frames=MAX_FRAMES,
        )
        single_corki = run_corki_episode(
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(101)),
            corki, TASKS[1], variation, np.random.default_rng(111),
            max_frames=MAX_FRAMES,
        )

        envs = [
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(100)),
            ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(101)),
        ]
        lanes = [
            FleetLane(tasks=[TASKS[0]], max_frames=MAX_FRAMES),
            FleetLane(
                tasks=[TASKS[1]], variation=variation,
                rng=np.random.default_rng(111), max_frames=MAX_FRAMES,
            ),
        ]
        traces = FleetRunner(baseline=baseline, corki=corki).run(envs, lanes)
        _assert_traces_identical(single_base, traces[0][0])
        _assert_traces_identical(single_corki, traces[1][0])


class TestBatchedEnvFacade:
    def test_step_many_shapes_and_masks(self, rng):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2, 3])
        assert len(fleet) == 3
        observations = fleet.reset_many([TASKS[0], TASKS[1], TASKS[2]])
        assert observations.shape[0] == 3
        targets = np.stack([env.scene.ee_pose for env in fleet.envs])
        stepped = fleet.step_many(targets, [True, True, False])
        assert stepped.shape == observations.shape
        assert fleet.succeeded_mask().shape == (3,)

    def test_indices_select_lanes(self):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2, 3])
        fleet.reset_many([TASKS[0], TASKS[1], TASKS[2]])
        before = fleet.envs[1].scene.ee_pose.copy()
        targets = np.stack([fleet.envs[i].scene.ee_pose + 0.01 for i in (0, 2)])
        fleet.step_many(targets, [True, True], indices=[0, 2])
        # Lane 1 was not selected, so its arm never moved.
        assert np.array_equal(fleet.envs[1].scene.ee_pose, before)
        assert fleet.envs[0].frame_count == 1 and fleet.envs[2].frame_count == 1

    def test_validates_lane_counts(self):
        fleet = BatchedManipulationEnv.from_seeds(SEEN_LAYOUT, [1, 2])
        with pytest.raises(ValueError):
            fleet.reset_many([TASKS[0]])
        with pytest.raises(ValueError):
            BatchedManipulationEnv([])
        fleet.reset_many([TASKS[0], TASKS[1]])
        targets = np.stack([env.scene.ee_pose for env in fleet.envs])
        with pytest.raises(ValueError, match="gripper flag"):
            fleet.step_many(targets, [True])
        with pytest.raises(ValueError, match="actuation model"):
            fleet.step_many(targets, [True, True], actuation=[fleet.envs[0].actuation])


class TestLaneValidation:
    def test_closed_loop_corki_lane_requires_rng(self):
        with pytest.raises(ValueError):
            FleetLane(tasks=[TASKS[0]], variation=VARIATIONS["corki-5"])

    def test_lane_requires_tasks(self):
        with pytest.raises(ValueError):
            FleetLane(tasks=[])

    def test_runner_requires_matching_policies(self, tiny_policies):
        baseline, _, _ = tiny_policies
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
        lane = FleetLane(
            tasks=[TASKS[0]], variation=VARIATIONS["corki-5"],
            rng=np.random.default_rng(1),
        )
        with pytest.raises(ValueError):
            FleetRunner(baseline=baseline).run([env], [lane])
