"""Tests for the closed-loop episode runners and job chaining."""

import numpy as np
import pytest

from repro.core import (
    VARIATIONS,
    EpisodeTrace,
    run_baseline_episode,
    run_corki_episode,
    run_job,
)
from repro.sim import SEEN_LAYOUT, TASKS, ManipulationEnv


@pytest.fixture()
def env():
    return ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(11))


class TestBaselineRunner:
    def test_trace_structure(self, env, tiny_policies):
        baseline, _, _ = tiny_policies
        trace = run_baseline_episode(env, baseline, TASKS[0], max_frames=20)
        assert isinstance(trace, EpisodeTrace)
        assert trace.frames <= 20
        assert all(step == 1 for step in trace.executed_steps)
        assert trace.inference_count == trace.frames
        assert trace.ee_path.shape == (trace.frames + 1, 6)

    def test_reference_path_is_expert(self, env, tiny_policies):
        baseline, _, _ = tiny_policies
        trace = run_baseline_episode(env, baseline, TASKS[0], max_frames=5)
        assert trace.reference_path.ndim == 2
        assert trace.reference_path.shape[1] == 6


class TestCorkiRunner:
    def test_fixed_steps_execution(self, env, tiny_policies):
        _, corki, _ = tiny_policies
        trace = run_corki_episode(
            env, corki, TASKS[0], VARIATIONS["corki-5"], np.random.default_rng(0),
            max_frames=23,
        )
        # Every trajectory except possibly the last executes exactly 5 steps.
        assert all(steps == 5 for steps in trace.executed_steps[:-1])
        assert trace.executed_steps[-1] <= 5
        assert trace.frames == sum(trace.executed_steps)

    def test_inference_count_reduced(self, env, tiny_policies):
        _, corki, _ = tiny_policies
        trace = run_corki_episode(
            env, corki, TASKS[1], VARIATIONS["corki-9"], np.random.default_rng(0),
            max_frames=36,
        )
        assert trace.inference_count <= -(-trace.frames // 9) + 1

    def test_adaptive_steps_within_horizon(self, env, tiny_policies):
        _, corki, _ = tiny_policies
        trace = run_corki_episode(
            env, corki, TASKS[2], VARIATIONS["corki-adap"], np.random.default_rng(0),
            max_frames=30,
        )
        assert all(1 <= steps <= 9 for steps in trace.executed_steps)

    def test_max_frames_respected(self, env, tiny_policies):
        _, corki, _ = tiny_policies
        for name in ("corki-1", "corki-5", "corki-9", "corki-adap"):
            trace = run_corki_episode(
                env, corki, TASKS[0], VARIATIONS[name], np.random.default_rng(0),
                max_frames=10,
            )
            assert trace.frames <= 10


class TestJobRunner:
    def test_stops_at_first_failure(self, env, tiny_policies):
        baseline, _, _ = tiny_policies
        tasks = [TASKS[0], TASKS[5], TASKS[9]]

        def episode(task, chained):
            return run_baseline_episode(env, baseline, task, max_frames=3, chained=chained)

        traces = run_job(env, tasks, episode)
        # Undertrained policy with a 3-frame budget fails the first task.
        assert len(traces) == 1
        assert not traces[0].success

    def test_scene_persists_across_chained_tasks(self, env, tiny_policies):
        """continue_with must not resample the scene."""
        baseline, _, _ = tiny_policies
        env.reset(TASKS[0])
        red_position = env.scene.blocks["red"].position.copy()
        env.continue_with(TASKS[1])
        # Block poses carry over (positions unchanged by re-tasking).
        assert np.allclose(env.scene.blocks["red"].position, red_position)
