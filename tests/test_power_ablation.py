"""Tests for the end-to-end power model and the algorithm-ablation machinery."""

import numpy as np
import pytest

from repro import constants
from repro.pipeline.power import PAPER_COMPUTE_POWER_SHARE, RobotPowerModel, system_energy_per_frame


class TestRobotPowerModel:
    def test_default_compute_share_matches_paper(self):
        model = RobotPowerModel()
        assert model.compute_share == pytest.approx(PAPER_COMPUTE_POWER_SHARE, abs=0.01)

    def test_accelerator_cuts_compute_power(self):
        baseline = RobotPowerModel()
        corki = baseline.with_accelerator()
        assert corki.compute_power_w < baseline.compute_power_w
        assert corki.motor_power_w == baseline.motor_power_w

    def test_motor_energy_dilutes_savings(self):
        """Computing-side ratio must exceed the end-to-end ratio."""
        baseline = RobotPowerModel()
        corki = baseline.with_accelerator()
        frame_ms = constants.FRAME_DT_MS
        baseline_computing = 1.0  # joules per frame, computing side
        corki_computing = 0.2
        computing_ratio = baseline_computing / corki_computing
        end_to_end_ratio = system_energy_per_frame(
            baseline_computing, frame_ms, baseline
        ) / system_energy_per_frame(corki_computing, frame_ms, corki)
        assert end_to_end_ratio < computing_ratio

    def test_energy_accounting(self):
        model = RobotPowerModel(motor_power_w=60.0, compute_power_w=40.0)
        total = system_energy_per_frame(2.0, 1000.0, model)
        assert total == pytest.approx(2.0 + 60.0)


class TestAlgorithmAblation:
    @pytest.fixture(scope="class")
    def tiny_setup(self):
        from repro.core.policy import CorkiPolicy
        from repro.core.training import TrainingConfig
        from repro.experiments.ablation_algorithm import _windows_and_targets
        from repro.sim import (
            ActionNormalizer,
            OBSERVATION_DIM,
            SEEN_LAYOUT,
            TASKS,
            collect_demonstrations,
        )

        rng = np.random.default_rng(0)
        demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=1)
        policy = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=24)
        normalizer = ActionNormalizer.fit(demos)
        samples = _windows_and_targets(demos, normalizer, np.random.default_rng(1), limit=20)
        return policy, demos, samples

    def test_heldout_error_is_finite(self, tiny_setup):
        from repro.experiments.ablation_algorithm import heldout_waypoint_error

        policy, _, samples = tiny_setup
        error = heldout_waypoint_error(policy, samples)
        assert np.isfinite(error) and error > 0

    def test_coefficient_supervision_trains(self, tiny_setup):
        from repro.core.training import TrainingConfig
        from repro.experiments.ablation_algorithm import train_coefficient_supervised

        policy, demos, _ = tiny_setup
        history = train_coefficient_supervised(
            policy, demos, TrainingConfig(epochs=2, batch_size=64)
        )
        assert history[-1] < history[0]
