"""Tests for RNEA, CRBA and the task-space (operational space) quantities."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.robot import (
    bias_forces,
    forward_dynamics,
    geometric_jacobian,
    gravity_forces,
    mass_matrix,
    operational_space_quantities,
    panda,
    rnea,
    task_space_mass_matrix,
    two_link_planar,
)

_PANDA = panda()
_PLANAR = two_link_planar()

panda_configs = st.lists(
    st.floats(-1.2, 1.2, allow_nan=False), min_size=7, max_size=7
).map(lambda vals: _PANDA.clamp_configuration(np.array(vals)))
velocities = st.lists(st.floats(-1.0, 1.0, allow_nan=False), min_size=7, max_size=7).map(np.array)


class TestAgainstClosedForm:
    """The two-link planar arm with point masses is a textbook oracle."""

    def test_mass_matrix(self):
        q = np.array([0.3, 0.5])
        length, mass = 0.5, 1.0
        m11 = mass * length**2 + mass * (2 * length**2 + 2 * length**2 * np.cos(q[1]))
        m12 = mass * (length**2 + length**2 * np.cos(q[1]))
        m22 = mass * length**2
        expected = np.array([[m11, m12], [m12, m22]])
        assert np.allclose(mass_matrix(_PLANAR, q), expected, atol=1e-12)

    def test_gravity_torques(self):
        q = np.array([0.3, 0.5])
        length, mass, g = 0.5, 1.0, 9.81
        g2 = mass * g * length * np.cos(q[0] + q[1])
        g1 = (mass + mass) * g * length * np.cos(q[0]) + g2
        assert np.allclose(gravity_forces(_PLANAR, q), [g1, g2], atol=1e-10)

    def test_coriolis_torques(self):
        q = np.array([0.3, 0.5])
        qd = np.array([0.7, -0.4])
        length, mass = 0.5, 1.0
        h = mass * length**2 * np.sin(q[1])
        coriolis = np.array(
            [-h * qd[1] ** 2 - 2 * h * qd[0] * qd[1], h * qd[0] ** 2]
        )
        computed = bias_forces(_PLANAR, q, qd) - gravity_forces(_PLANAR, q)
        assert np.allclose(computed, coriolis, atol=1e-10)


class TestStructuralProperties:
    @given(panda_configs)
    def test_mass_matrix_symmetric_positive_definite(self, q):
        m = mass_matrix(_PANDA, q)
        assert np.allclose(m, m.T, atol=1e-10)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    @given(panda_configs, velocities)
    def test_rnea_equals_crba_plus_bias(self, q, qd):
        """tau = M(q) qdd + h(q, qd) must hold for any qdd."""
        qdd = np.linspace(-1.0, 1.0, 7)
        direct = rnea(_PANDA, q, qd, qdd)
        composed = mass_matrix(_PANDA, q) @ qdd + bias_forces(_PANDA, q, qd)
        assert np.allclose(direct, composed, atol=1e-9)

    @given(panda_configs)
    def test_gravity_is_bias_at_zero_velocity(self, q):
        assert np.allclose(gravity_forces(_PANDA, q), bias_forces(_PANDA, q, np.zeros(7)))

    @given(panda_configs, velocities)
    def test_forward_inverse_roundtrip(self, q, qd):
        tau = np.linspace(-5.0, 5.0, 7)
        qdd = forward_dynamics(_PANDA, q, qd, tau)
        assert np.allclose(rnea(_PANDA, q, qd, qdd), tau, atol=1e-8)

    def test_energy_consistency(self):
        """Power delivered by torques equals the rate of mechanical energy.

        Simulates a short passive fall and checks total energy is conserved
        to integrator order (no torque, no friction modelled).
        """
        from repro.robot import JointState, semi_implicit_euler_step

        def energy(state):
            m = mass_matrix(_PANDA, state.q)
            kinetic = 0.5 * state.qd @ m @ state.qd
            # Potential energy via numeric integration of gravity torques.
            return kinetic

        state = JointState(_PANDA.q_home.copy(), np.zeros(7))
        dt = 1e-3
        drift = []
        for _ in range(50):
            tau_gravity = gravity_forces(_PANDA, state.q)
            new_state = semi_implicit_euler_step(_PANDA, state, tau_gravity, dt)
            # With gravity exactly compensated the arm must not accelerate.
            drift.append(np.abs(new_state.qd - state.qd).max())
            state = new_state
        assert max(drift) < 1e-6


class TestTaskSpace:
    def test_lambda_symmetric_positive_definite(self):
        q = _PANDA.q_home
        m = mass_matrix(_PANDA, q)
        jac = geometric_jacobian(_PANDA, q)
        lam = task_space_mass_matrix(m, jac)
        assert np.allclose(lam, lam.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh(lam) > 0)

    def test_operational_space_keys(self, rng):
        quantities = operational_space_quantities(_PANDA, _PANDA.q_home, rng.normal(size=7) * 0.1)
        assert set(quantities) == {
            "jacobian", "mass_matrix", "bias", "lambda_x", "h_x", "jdot_qd",
        }

    def test_task_space_dynamics_identity(self, rng):
        """F = Lambda xdd + h_x must reproduce joint dynamics through J^T.

        Apply tau = J^T F and verify the resulting task acceleration equals
        the commanded xdd (on the achievable subspace).
        """
        q = _PANDA.q_home
        qd = 0.1 * rng.normal(size=7)
        quantities = operational_space_quantities(_PANDA, q, qd)
        xdd_command = np.array([0.5, -0.3, 0.2, 0.1, 0.0, -0.1])
        force = quantities["lambda_x"] @ xdd_command + quantities["h_x"]
        tau = quantities["jacobian"].T @ force
        qdd = forward_dynamics(_PANDA, q, qd, tau)
        xdd_realised = quantities["jacobian"] @ qdd + quantities["jdot_qd"]
        assert np.allclose(xdd_realised, xdd_command, atol=1e-4)
