"""Two keyed stream families whose keys can unify (RNG-PROVENANCE).

``[seed, lane]`` and ``[seed, episode]`` look distinct but nothing in
either key pins a constant: lane 3 of the first family IS episode 3 of
the second.  This is the PR 4 bug class with the arithmetic stripped --
the shallow RNG-KEYED rule is silent here, only the whole-program
comparison sees it.
"""

import numpy as np


def lane_stream(seed: int, lane: int) -> np.random.Generator:
    return np.random.default_rng([seed, lane])


def episode_stream(seed: int, episode: int) -> np.random.Generator:
    return np.random.default_rng([seed, episode])
