"""Bad: a public batched kernel with no scalar reference anywhere in
reach -- nothing for the differential harness to pin it against."""

import numpy as np


def torque_lanes(q, qd):
    return 2.0 * np.asarray(q) + np.asarray(qd)
