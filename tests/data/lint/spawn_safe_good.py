"""Module-level workers and data-only payloads (SPAWN-SAFE clean)."""


def scale_chunk(chunk):
    return [value * 2 for value in chunk]


def run(chunks, pool):
    return pool.map(scale_chunk, chunks)
