"""Bad: the PR 7 torn-cache-write shape -- payloads written directly to
their final path, so a crash mid-write leaves a torn entry behind."""

import json

import numpy as np


def put(path, payload: bytes):
    with open(path, "wb") as handle:
        handle.write(payload)


def save_entry(path, **arrays):
    np.savez(path, **arrays)


def write_index(path, index: dict):
    path.write_text(json.dumps(index))
