"""Good: every stream is a keyed list seed -- [seed, domain, identity]."""

import numpy as np


def lane_generators(seed: int, lane: int):
    env_rng = np.random.default_rng([seed, 1, lane])
    feedback_rng = np.random.default_rng([seed, 2, lane])
    return env_rng, feedback_rng


def lane_rngs(seed: int, lanes: int):
    return [np.random.default_rng([seed, lane]) for lane in range(lanes)]


def shuffle_in_place(items, rng):
    rng.shuffle(items)
