"""Batched kernels that collapse or reorder the lane axis (LANE-SHAPE).

Every violation here is a shape the differential harness would catch at
runtime; the deep pass catches them at parse time.
"""

import numpy as np


def energy(q: np.ndarray) -> float:
    return float(np.sum(q * q))


def energy_lanes(qs: np.ndarray) -> np.ndarray:
    return np.sum(qs * qs)  # no axis: sums across lanes too


def drift(q: np.ndarray) -> np.ndarray:
    return q - np.mean(q)


def drift_lanes(qs: np.ndarray) -> np.ndarray:
    centered = qs - np.mean(qs, axis=0)  # axis 0 is the lane axis
    moving = np.abs(centered).max(axis=1) > 0.5
    packed = centered[moving]  # boolean gather compresses the lanes
    flipped = np.transpose(centered, (1, 0))  # lanes leave position 0
    return packed + flipped + centered.T
