"""Modern-syntax regression corpus: the engine must parse and track these.

Walrus bindings, ``match`` statements, starred assignment targets and
nested comprehensions all flow through both the shallow rules and the
deep passes; this file must lint clean under ``--deep``.
"""

import numpy as np


def classify(q: np.ndarray) -> str:
    match int(q.size):
        case 0:
            return "empty"
        case 1:
            return "scalar"
        case _:
            return "vector"


def head(q: np.ndarray) -> float:
    first, *rest = q.tolist()
    return float(first) + float(len(rest))


def head_lanes(qs: np.ndarray) -> np.ndarray:
    if (count := qs.shape[0]) == 0:
        return qs
    table = [[qs[lane, j] for j in range(qs.shape[1])] for lane in range(count)]
    return np.asarray(table) * np.ones((count, qs.shape[1]))
