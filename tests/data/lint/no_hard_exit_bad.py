"""Bad: hard process exits in library code skip every cleanup seam."""

import os
import sys


def fail(message: str) -> None:
    print(message)
    sys.exit(1)


def crash() -> None:
    os._exit(17)


def bail(code: int) -> None:
    raise SystemExit(code)
