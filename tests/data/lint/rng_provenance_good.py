"""Keyed stream families separated by fixed domain tags.

Each family owns a distinct integer constant in position 1, so no
assignment of seeds or lane indices can make two streams identical --
the property RNG-PROVENANCE proves tree-wide.
"""

import numpy as np

_DOMAIN_ENV = 1
_DOMAIN_FEEDBACK = 2


def env_stream(seed: int, lane: int) -> np.random.Generator:
    return np.random.default_rng([seed, _DOMAIN_ENV, lane])


def feedback_stream(seed: int, lane: int) -> np.random.Generator:
    return np.random.default_rng([seed, _DOMAIN_FEEDBACK, lane])
