"""Good: the batched kernel ships with its frozen scalar twin."""

import numpy as np


def torque(q, qd):
    return 2.0 * q + qd


def torque_lanes(qs, qds):
    return np.stack([torque(q, qd) for q, qd in zip(qs, qds)])
