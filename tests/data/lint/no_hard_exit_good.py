"""Good: library code raises a domain exception; the owner decides."""


class WorkerError(RuntimeError):
    """Raised instead of exiting; the caller owns the process."""


def fail(message: str) -> None:
    raise WorkerError(message)
