"""Imports that follow the declared DAG (LAYER-SAFE clean).

Linted as ``repro.robot.layering_fixture`` (layer 1): foundation imports
point downward and ``repro.robot`` siblings stay intra-subpackage.
"""

import repro.robot.dynamics
from repro import atomicio
from repro.constants import JOINT_COUNT


def joints() -> int:
    return JOINT_COUNT + len((atomicio.__name__, repro.robot.dynamics.__name__))
