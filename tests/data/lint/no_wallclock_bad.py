"""Bad: inline wall-clock reads couple results to the host clock."""

import time
from datetime import datetime


def measure(work):
    start = time.time()
    work()
    return time.time() - start


def deadline_passed(deadline: float) -> bool:
    return time.perf_counter() > deadline


def stamp() -> str:
    return datetime.now().isoformat()
