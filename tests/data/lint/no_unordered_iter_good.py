"""Good: sorted(...) pins the order before anything draws from it."""

import os


def cache_key(entries):
    parts = []
    for entry in sorted({e.strip() for e in entries}):
        parts.append(entry)
    return "|".join(parts)


def draw_per_task(rng, tasks):
    return [rng.normal() for task in sorted(set(tasks))]


def archive_names(root):
    return [name for name in sorted(os.listdir(root))]
