"""Batched kernels that keep the lane axis leading and intact.

The idioms here are exactly the ones the live tree uses: trailing-axis
reductions, mask *writes*, ``np.where`` selection, trailing-axes-only
transposes, scalar ``.any()`` guards and per-lane integer loops.
"""

import numpy as np


def settle(q: np.ndarray) -> np.ndarray:
    return np.where(np.abs(q) > 1.0, 0.0, q)


def settle_lanes(qs: np.ndarray) -> np.ndarray:
    lanes, width = qs.shape
    out = np.zeros((lanes, width))
    moving = np.abs(qs).max(axis=1) > 1.0
    out[~moving] = 0.0  # mask writes stay lane-aligned
    norms = np.sqrt(np.sum(qs * qs, axis=1))  # trailing-axis reduction
    outer = np.transpose(qs[:, None, :] * qs[:, :, None], (0, 2, 1))
    for lane in range(lanes):
        out[lane] = qs[lane] * norms[lane]
    if moving.any():  # scalar guards reduce the mask, not the data
        out = out + outer[:, 0, :]
    return np.where(moving[:, None], out, qs)
