"""Unpicklable callables handed to a spawn pool (SPAWN-SAFE).

A lambda and a nested closure both die at the pickle boundary -- at
dispatch time, inside a worker, long after this file parsed fine.
"""


def run(chunks, pool):
    def scale(chunk):
        return [value * 2 for value in chunk]

    doubled = pool.map(scale, chunks)
    return pool.starmap(lambda a, b: a + b, doubled)
