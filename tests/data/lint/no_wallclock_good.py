"""Good: the clock is an injectable seam -- a default *reference*, never
an inline call -- so tests can substitute a fake clock."""

import time
from typing import Callable


def measure(work, clock: Callable[[], float] = time.monotonic) -> float:
    start = clock()
    work()
    return clock() - start


def deadline_passed(deadline: float, clock: Callable[[], float]) -> bool:
    return clock() > deadline
