"""Good: temp file in the destination directory, then one atomic rename;
in-memory buffers are not persistence and stay unflagged."""

import io
import os
import tempfile

import numpy as np


def put(path: str, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    with os.fdopen(fd, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def encode(**arrays) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()
