"""Bad: iteration order of sets and directory listings is undefined, so
anything downstream (RNG draws, trace arrays, cache keys) becomes
run-order dependent."""

import os


def cache_key(entries):
    parts = []
    for entry in {e.strip() for e in entries}:
        parts.append(entry)
    return "|".join(parts)


def draw_per_task(rng, tasks):
    return [rng.normal() for task in set(tasks)]


def archive_names(root):
    return [name for name in os.listdir(root)]
