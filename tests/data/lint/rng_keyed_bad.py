"""Bad: the PR 4 stream collision, verbatim shape.

``[seed + 1, lane]`` / ``[seed + 2, lane]`` makes seed S's feedback
streams bit-identical to seed S+1's environment streams.
"""

import numpy as np


def lane_generators(seed: int, lane: int):
    env_rng = np.random.default_rng([seed + 1, lane])
    feedback_rng = np.random.default_rng([seed + 2, lane])
    return env_rng, feedback_rng


def lane_rngs(seed: int, lanes: int):
    return [np.random.default_rng(seed + lane) for lane in range(lanes)]


def master(seed: int):
    return np.random.default_rng(seed)


def entropy():
    return np.random.default_rng()


def shuffle_in_place(items):
    np.random.shuffle(items)
