"""A domain-model module reaching up into the serving tier (LAYER-SAFE).

The test linter presents this file as ``repro.robot.layering_fixture``
(layer 1); ``repro.serving`` sits four layers above it, so the import is
an upward edge the declared DAG forbids.
"""

from repro.serving.service import EvaluationService


def evaluate(service: EvaluationService) -> float:
    return 0.0
