"""Protocol-level tests for the TCP/JSONL serving front end.

Every test here drives a *real* asyncio server over a loopback socket
(:func:`repro.serving.server.start_server_thread`), because the properties
under test live at the protocol boundary: wire **byte-identity** with the
in-process service (and therefore with ``evaluate_system(workers=1)``),
out-of-order completion under mixed priorities, deadline expiry mid-flight,
admission shedding under a full pending batch, malformed frames erroring
per-connection without killing the server, keyed connection/frame fault
injection, and hot policy-weight reload mid-drain.

Determinism without sleeps: the server takes an injectable ``clock`` (fake
time for deadlines) and two seams -- ``batch_started`` on the event loop,
``before_drain`` inside the drain executor.  Blocking ``before_drain`` on a
``threading.Event`` holds a batch "mid-drain" for exactly as long as a test
needs to race an admission or a reload against it.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.analysis.evaluation import JOB_LENGTH, TrainedPolicies, evaluate_system
from repro.analysis.parallel import (
    archive_policies,
    restore_policies,
    save_archive,
    shutdown_pools,
)
from repro.reliability import FaultPlan
from repro.serving.cache import ResultCache, policy_digest
from repro.serving.client import ServingClient
from repro.serving.jsonl import request_from_json, response_to_json
from repro.serving.server import start_server_thread
from repro.serving.service import EvaluationService
from repro.sim.tasks import TASKS, sample_job
from repro.sim.world import SEEN_LAYOUT


@pytest.fixture(scope="module")
def trained(tiny_policies):
    baseline, corki, _ = tiny_policies
    return TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


class TickingClock:
    """A fake monotonic clock: every reading advances one millisecond, so
    deadline expiry is a function of *clock readings*, not wall time."""

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def job_frames(system: str, seed: int, count: int, prefix: str = "r") -> list[dict]:
    """Wire frames mirroring lanes 0..count-1 of ``evaluate_system(seed=seed)``."""
    job_rng = np.random.default_rng(seed)
    jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(count)]
    return [
        {
            "id": f"{prefix}{lane}",
            "system": system,
            "instructions": [task.instruction for task in job],
            "seed": seed,
            "lane": lane,
        }
        for lane, job in enumerate(jobs)
    ]


def quick_frame(request_id: str, lane: int, seed: int = 7, **extra) -> dict:
    """A cheap single-instruction frame for protocol-shape tests."""
    return {
        "id": request_id,
        "system": "corki-5",
        "instruction": TASKS[lane % len(TASKS)].instruction,
        "seed": seed,
        "lane": lane,
        "max_frames": 40,
        **extra,
    }


def expected_line(service_result, request_id) -> bytes:
    """The exact bytes the server must put on the wire for ``service_result``."""
    return (json.dumps(response_to_json(service_result, request_id)) + "\n").encode()


# -- byte identity -------------------------------------------------------------


class TestWireByteIdentity:
    def test_tcp_bytes_match_in_process_service_and_batch_eval(self, trained):
        """The acceptance property: a response served over the socket is
        byte-identical to the in-process service's serialization of the same
        request -- and its traces match ``evaluate_system(workers=1)``."""
        frames = job_frames("corki-5", 11, 2)
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                for frame in frames:
                    client.send(frame)
                client.flush()
                wire = [client.recv_raw() for _ in frames]

        requests = [request_from_json(frame) for frame in frames]
        with EvaluationService(trained, workers=1, slots=2) as service:
            results = service.serve(requests)
        assert wire == [
            expected_line(result, frame["id"])
            for frame, result in zip(frames, results)
        ]

        evaluation = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=2, seed=11, workers=1
        )
        cursor = 0  # jobs may stop early, so lanes contribute variable counts
        for line in wire:
            payload = json.loads(line)
            traces = evaluation.traces[cursor : cursor + len(payload["successes"])]
            cursor += len(traces)
            assert payload["status"] == "ok" and payload["cached"] is False
            assert payload["successes"] == [trace.success for trace in traces]
            assert payload["frames"] == [trace.frames for trace in traces]
            assert payload["executed_steps"] == [
                list(trace.executed_steps) for trace in traces
            ]
        assert cursor == len(evaluation.traces)

    def test_cached_rerun_identical_modulo_cached_flag(self, trained):
        """A warm rerun serves from cache: same bytes except ``cached``."""
        frame = quick_frame("w0", 0)
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                (cold,) = client.request(frame)
                (warm,) = client.request(frame)
        assert cold["cached"] is False and warm["cached"] is True
        cold.pop("cached")
        warm.pop("cached")
        assert warm == cold


# -- priorities ----------------------------------------------------------------


class TestPriorities:
    def test_mixed_priorities_complete_out_of_order(self, trained):
        """Within one batch, responses arrive in ``(-priority, arrival)``
        order -- wire-observable out-of-order completion; match by id."""
        frames = [
            quick_frame("p0", 0, priority=0),
            quick_frame("p1", 1, priority=5),
            quick_frame("p2", 2, priority=0),
            quick_frame("p3", 3, priority=9),
        ]
        with start_server_thread(trained, slots=4) as handle:
            with ServingClient(handle.host, handle.port) as client:
                responses = client.request(*frames)
        assert [r["id"] for r in responses] == ["p3", "p1", "p0", "p2"]
        assert all(r["status"] == "ok" for r in responses)

    def test_priority_dispatch_preserves_identity(self, trained):
        """Priority reorders *dispatch*, never results: each response is
        byte-identical to the same request served alone at priority 0."""
        frame = quick_frame("solo", 1, seed=19)
        with start_server_thread(trained, slots=4) as handle:
            with ServingClient(handle.host, handle.port) as client:
                alone = client.request(dict(frame))
        # A second server (fresh cache) races the same request at priority 9
        # against a batch-mate; the response must not change.
        with start_server_thread(trained, slots=4) as handle:
            with ServingClient(handle.host, handle.port) as client:
                raced = client.request(
                    quick_frame("other", 0, seed=19), dict(frame, priority=9)
                )
        by_id = {r["id"]: r for r in raced}
        assert by_id["solo"] == alone[0]


# -- deadlines -----------------------------------------------------------------


class TestDeadlines:
    def test_deadline_expires_mid_flight(self, trained):
        """A deadline that survives admission but expires mid-roll answers
        ``timeout`` while its batch-mates -- and the server -- carry on."""
        clock = TickingClock(step=0.001)
        with start_server_thread(trained, slots=2, clock=clock) as handle:
            with ServingClient(handle.host, handle.port) as client:
                doomed = quick_frame("d0", 0, deadline_ms=25.0)
                doomed.pop("max_frames")  # long enough to outlive 25 readings
                healthy = quick_frame("d1", 1)
                responses = client.request(doomed, healthy)
                by_id = {r["id"]: r for r in responses}
                assert by_id["d0"]["status"] == "timeout"
                assert "deadline" in by_id["d0"]["error"]
                assert by_id["d1"]["status"] == "ok"
                # The server survives an expiry: a follow-up still serves.
                (after,) = client.request(quick_frame("d2", 2))
                assert after["status"] == "ok"


# -- admission control ---------------------------------------------------------


class TestAdmission:
    def test_shedding_under_full_pending_batch(self, trained):
        """With the drain held mid-flight and ``max_pending=2``, the third
        admission sheds immediately with the service's rejection envelope."""
        started, release = threading.Event(), threading.Event()
        calls: list[int] = []

        def hold(requests):
            calls.append(len(requests))
            if len(calls) == 1:
                started.set()
                release.wait(timeout=60)

        with start_server_thread(
            trained, slots=4, max_pending=2, before_drain=hold
        ) as handle:
            try:
                with ServingClient(handle.host, handle.port) as client:
                    client.send(quick_frame("hold", 0))
                    client.flush()
                    assert started.wait(timeout=60)
                    # Dispatcher is blocked mid-drain; pending is empty again.
                    for index in range(3):
                        client.send(quick_frame(f"s{index}", index + 1))
                    client.flush()
                    shed = client.recv()  # answered before any drain finishes
                    assert shed == {
                        "id": "s2",
                        "status": "rejected",
                        "error": "admission queue full",
                    }
                    release.set()
                    rest = [client.recv() for _ in range(3)]
                    assert {r["id"] for r in rest} == {"hold", "s0", "s1"}
                    assert all(r["status"] == "ok" for r in rest)
                    assert client.stats()["shed"] == 1
            finally:
                release.set()


# -- malformed frames ----------------------------------------------------------


class TestMalformedFrames:
    def test_garbage_frames_error_without_killing_the_connection(self, trained):
        """Binary garbage, truncated JSON and non-object frames each answer
        an error envelope; the same connection then serves a real request."""
        with start_server_thread(trained, slots=2) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                stream = sock.makefile("rwb")
                for bad in (
                    b"\xff\xfe\x00 binary garbage\n",
                    b'{"id": "t0", "system": "corki-5", "instr\n',
                    b"[1, 2, 3]\n",
                ):
                    stream.write(bad)
                    stream.flush()
                    response = json.loads(stream.readline())
                    assert response["status"] == "error"
                    assert "error" in response
                stream.write((json.dumps(quick_frame("ok0", 0)) + "\n\n").encode())
                stream.flush()
                served = json.loads(stream.readline())
                assert served["id"] == "ok0" and served["status"] == "ok"

    def test_unknown_instruction_errors_with_id(self, trained):
        """A parseable frame with a bad instruction keeps its id in the
        error, so a pipelined client can still match it."""
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                client.send({"id": "bad", "system": "corki-5",
                             "instruction": "summon a fourth dimension", "seed": 1})
                client.flush()
                response = client.recv()
        assert response["id"] == "bad" and response["status"] == "error"

    def test_oversized_line_closes_only_its_connection(self, trained):
        """A frame exceeding ``max_line_bytes`` errors and hangs up -- that
        connection only; the server keeps accepting and serving."""
        with start_server_thread(trained, slots=2, max_line_bytes=4096) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"x" * 8192 + b"\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["status"] == "error"
                assert "exceeds 4096 bytes" in response["error"]
                assert stream.readline() == b""  # server hung up on us
            with ServingClient(handle.host, handle.port) as client:
                (served,) = client.request(quick_frame("alive", 0))
                assert served["status"] == "ok"
                assert client.stats()["connections"] == 2


# -- fault injection -----------------------------------------------------------


class TestFaultDomains:
    def test_connection_drops_are_keyed_and_isolated(self, trained):
        """Domain 13: the plan decides per accepted connection; a doomed
        connection closes at accept, its neighbours serve normally."""
        plan = FaultPlan(seed=3, connection_drop_rate=0.5)
        doomed = [plan.drops_connection(index) for index in range(3)]
        assert doomed == [True, False, False]  # keyed, so this is stable
        with start_server_thread(trained, slots=2, fault_plan=plan) as handle:
            for index, drops in enumerate(doomed):
                with socket.create_connection((handle.host, handle.port)) as sock:
                    stream = sock.makefile("rwb")
                    if drops:
                        assert stream.readline() == b""
                        continue
                    stream.write(
                        (json.dumps(quick_frame(f"c{index}", index)) + "\n\n").encode()
                    )
                    stream.flush()
                    assert json.loads(stream.readline())["status"] == "ok"
            assert handle.server.connections_dropped == 1

    def test_frame_corruption_is_keyed_and_survivable(self, trained):
        """Domain 14: mangled frames error per-frame; clean batch-mates
        serve.  The corruption pattern is a pure function of the plan."""
        plan = FaultPlan(seed=1, frame_corrupt_rate=0.5)
        corrupted = [plan.corrupts_frame(0, index) for index in range(6)]
        assert corrupted == [False, True, False, True, False, True]
        with start_server_thread(trained, slots=4, fault_plan=plan) as handle:
            with ServingClient(handle.host, handle.port) as client:
                for index in range(6):
                    client.send(quick_frame(f"f{index}", index))
                client.flush()
                responses = [client.recv() for _ in range(6)]
        # Mangled frames error as they arrive (before the batch dispatches),
        # so the three errors precede the three served responses.
        assert [r["status"] for r in responses] == ["error"] * 3 + ["ok"] * 3
        assert [r["id"] for r in responses[3:]] == ["f0", "f2", "f4"]
        assert handle.server.frames_corrupted == 3


# -- stats op ------------------------------------------------------------------


class TestStatsOp:
    def test_stats_waits_for_this_connections_admissions(self, trained):
        """``stats`` flushes, then answers only after every admission on the
        connection has been served -- so its counters include them."""
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                client.send(quick_frame("q0", 0))
                client.send({"op": "stats"})
                client.flush()
                first, second = client.recv(), client.recv()
        assert first["id"] == "q0" and first["status"] == "ok"
        stats = second["stats"]
        assert stats["requests_served"] == 1
        assert stats["batches"] == 1
        assert stats["policy"] == policy_digest(trained)


# -- hot reload ----------------------------------------------------------------


def perturb(policies) -> TrainedPolicies:
    """A weight-distinct clone: same shapes, different ``policy_digest``."""
    clone = restore_policies(archive_policies(policies))
    parameter = clone.baseline.parameters()[0]
    parameter.data[...] = parameter.data + 1e-3
    return clone


class TestHotReload:
    def test_reload_mid_drain_keeps_both_digests(self, trained):
        """The satellite: swap weights while a batch is mid-drain.  The
        in-flight batch finishes byte-identical to the old weights, the
        post-swap batch matches a fresh roll under the new weights, and the
        shared cache holds both result sets."""
        fresh = perturb(trained)
        old_digest, new_digest = policy_digest(trained), policy_digest(fresh)
        assert old_digest != new_digest

        cache = ResultCache()
        started, release = threading.Event(), threading.Event()
        calls: list[int] = []

        def hold(requests):
            calls.append(len(requests))
            if len(calls) == 1:
                started.set()
                release.wait(timeout=60)

        frames_a = [quick_frame("a0", 0, seed=13), quick_frame("a1", 1, seed=13)]
        frames_b = [quick_frame("b0", 0, seed=13), quick_frame("b1", 1, seed=13)]
        with start_server_thread(
            trained, slots=2, cache=cache, before_drain=hold
        ) as handle:
            try:
                with ServingClient(handle.host, handle.port) as client:
                    for frame in frames_a:
                        client.send(frame)
                    client.flush()
                    assert started.wait(timeout=60)  # batch A is mid-drain
                    assert handle.server.reload(fresh) == new_digest
                    for frame in frames_b:
                        client.send(frame)
                    client.flush()
                    release.set()
                    wire = [client.recv_raw() for _ in range(4)]
                    assert client.stats()["policy"] == new_digest
            finally:
                release.set()

        with EvaluationService(trained, workers=1, slots=2) as old_service:
            old_results = old_service.serve(
                [request_from_json(frame) for frame in frames_a]
            )
        with EvaluationService(fresh, workers=1, slots=2) as new_service:
            new_results = new_service.serve(
                [request_from_json(frame) for frame in frames_b]
            )
        assert wire == [
            expected_line(result, frame["id"])
            for frame, result in zip(
                frames_a + frames_b, list(old_results) + list(new_results)
            )
        ]
        # Same request identity under two digests: four distinct entries.
        assert cache.stats()["entries"] == 4

    def test_reload_over_the_wire_from_archive(self, trained, tmp_path):
        """The ``reload`` op round-trips weights through ``save_archive`` /
        ``load_archive`` and serves under the restored digest."""
        fresh = perturb(trained)
        path = tmp_path / "weights.npz"
        save_archive(path, archive_policies(fresh))
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                assert client.reload(str(path)) == policy_digest(fresh)
                (served,) = client.request(quick_frame("post", 0))
                assert served["status"] == "ok"
                assert client.stats()["policy"] == policy_digest(fresh)
                assert client.stats()["reloads"] == 1

    def test_reload_with_missing_archive_errors(self, trained, tmp_path):
        with start_server_thread(trained, slots=2) as handle:
            with ServingClient(handle.host, handle.port) as client:
                with pytest.raises(RuntimeError, match="reload failed"):
                    client.reload(str(tmp_path / "missing.npz"))
                (served,) = client.request(quick_frame("still", 0))
                assert served["status"] == "ok"
