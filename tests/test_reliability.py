"""Chaos suite: every promised failure mode, injected and recovered.

The reliability contract under test (``repro.reliability`` +
``analysis/parallel.py`` + ``serving/``): a fault degrades a *request*,
never the process, and whatever recovers is **byte-identical** to the
fault-free ``workers=1`` run -- lane randomness is keyed on global lane
indices, so re-rolling a crashed chunk or a corrupt cache entry cannot
change a byte.  Faults are injected by seeded :class:`FaultPlan` streams,
so every test here is deterministic and CI-gateable (the ``chaos`` job).
"""

import dataclasses
import io
import json

import numpy as np
import pytest

from repro.analysis import parallel
from repro.analysis.evaluation import (
    JOB_LENGTH,
    TrainedPolicies,
    evaluate_system,
    roll_lane_chunk,
    sample_job,
)
from repro.analysis.parallel import (
    archive_policies,
    restore_policies,
    run_sharded,
    shutdown_pools,
)
from repro.reliability import (
    ChunkDirective,
    FaultPlan,
    HealthCounters,
    PoolUnhealthy,
    RetryPolicy,
)
from repro.serving.cache import ResultCache
from repro.serving.jsonl import serve_jsonl
from repro.serving.service import EpisodeRequest, EvaluationService
from repro.sim.world import SEEN_LAYOUT

SEED = 77
JOBS = 4


@pytest.fixture(scope="module")
def trained(tiny_policies):
    baseline, corki, _ = tiny_policies
    return TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


@pytest.fixture(scope="module")
def reference(trained):
    """The fault-free in-process roll every recovery must reproduce,
    lane-structured (a failed task aborts its job, so per-lane trace counts
    vary -- the flattened ``evaluate_system`` trace list cannot be sliced
    back into lanes)."""
    return roll_lane_chunk(
        trained, "corki-5", SEEN_LAYOUT, SEED, lane_jobs_for(SEED, JOBS),
        fleet_size=32,
    )


def lane_jobs_for(seed: int, count: int):
    job_rng = np.random.default_rng(seed)
    return [sample_job(job_rng, JOB_LENGTH) for _ in range(count)]


def job_requests(system: str, seed: int, count: int) -> list[EpisodeRequest]:
    return [
        EpisodeRequest(
            system=system,
            instructions=tuple(task.instruction for task in job),
            seed=seed,
            lane=lane,
        )
        for lane, job in enumerate(lane_jobs_for(seed, count))
    ]


def assert_traces_equal(a, b):
    assert a.success == b.success
    assert a.frames == b.frames
    assert a.executed_steps == b.executed_steps
    assert np.array_equal(a.ee_path, b.ee_path)
    assert np.array_equal(a.reference_path, b.reference_path)
    assert np.array_equal(a.gripper_path, b.gripper_path)


def reference_flat(reference):
    return [trace for lane_traces in reference for trace in lane_traces]


def assert_lane_equal(expected, actual):
    assert len(expected) == len(actual)
    for fresh, other in zip(expected, actual):
        assert_traces_equal(fresh, other)


def shared_pool_health(trained) -> HealthCounters:
    """The cached workers=2 pool's counters (without taking a lease)."""
    entry = parallel._POOL_CACHE.get((id(trained), 2))
    return entry[1].health if entry is not None else HealthCounters()


NO_BACKOFF = RetryPolicy(max_attempts=3, base_delay=0.0)


# -- the fault plan itself -----------------------------------------------------


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=-1)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, malformed_line_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, faulted_attempts=-1)

    def test_decisions_are_deterministic_and_identity_keyed(self):
        plan = FaultPlan(seed=9, crash_rate=0.5, cache_corrupt_rate=0.5,
                         malformed_line_rate=0.5)
        clone = FaultPlan(seed=9, crash_rate=0.5, cache_corrupt_rate=0.5,
                          malformed_line_rate=0.5)
        keys = [(1, 0, 2), (1, 2, 2), (2, 0, 2)]
        assert [plan.chunk_directive(k, 0) for k in keys] == [
            clone.chunk_directive(k, 0) for k in keys
        ]
        assert [plan.mangles_line(i) for i in range(8)] == [
            clone.mangles_line(i) for i in range(8)
        ]
        digest = "ab" * 32
        assert plan.corrupts_cache_read(digest, 0) == clone.corrupts_cache_read(digest, 0)

    def test_seed_changes_decisions(self):
        decisions = {
            seed: tuple(
                FaultPlan(seed=seed, crash_rate=0.5).chunk_directive((1, k, 2), 0)
                is not None
                for k in range(16)
            )
            for seed in range(4)
        }
        assert len(set(decisions.values())) > 1

    def test_budget_gates_attempts_and_reads(self):
        plan = FaultPlan(seed=1, crash_rate=1.0, cache_corrupt_rate=1.0,
                         faulted_attempts=1, faulted_reads=1)
        assert plan.chunk_directive((5, 0, 2), 0) is not None
        assert plan.chunk_directive((5, 0, 2), 1) is None
        digest = "cd" * 32
        assert plan.corrupts_cache_read(digest, 0)
        assert not plan.corrupts_cache_read(digest, 1)
        persistent = FaultPlan(seed=1, crash_rate=1.0, faulted_attempts=99)
        assert persistent.chunk_directive((5, 0, 2), 42) is not None

    def test_crash_outranks_hang_outranks_slow(self):
        every = FaultPlan(seed=1, crash_rate=1.0, hang_rate=1.0, slow_rate=1.0)
        assert every.chunk_directive((1, 0, 1), 0).kind == "crash"
        hang = FaultPlan(seed=1, hang_rate=1.0, slow_rate=1.0, hang_seconds=9.0)
        directive = hang.chunk_directive((1, 0, 1), 0)
        assert directive == ChunkDirective("hang", seconds=9.0)

    def test_payload_transforms(self):
        payload = bytes(range(60))
        assert FaultPlan.truncate(payload) == payload[:20]
        line = '{"system": "corki-5", "seed": 1}'
        mangled = FaultPlan.mangle_line(line)
        assert mangled == line[: len(line) // 2]
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled)


class TestRetryPolicy:
    def test_capped_exponential_delays(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.3,
                             multiplier=2.0)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.3, 0.3, 0.3])

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# -- worker-crash recovery -----------------------------------------------------


class TestCrashRecovery:
    def test_injected_crash_recovers_byte_identically(self, trained, reference):
        """The acceptance property: every chunk's first attempt crashes, the
        retry loop re-dispatches, and the merged result equals the fault-free
        ``workers=1`` evaluation byte for byte."""
        before = dataclasses.replace(shared_pool_health(trained))
        faulted = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, JOBS, seed=SEED, workers=2,
            retry=NO_BACKOFF, fault_plan=FaultPlan(seed=5, crash_rate=1.0),
        )
        assert_lane_equal(reference_flat(reference), faulted.traces)
        health = shared_pool_health(trained)
        assert health.faults_injected - before.faults_injected >= 1
        assert health.retries - before.retries >= 1

    def test_retries_exhausted_raises_pool_unhealthy(self, trained):
        """A persistent fault (budget past the retry cap) must surface as
        PoolUnhealthy chaining the underlying failure, not hang or succeed."""
        plan = FaultPlan(seed=5, crash_rate=1.0, faulted_attempts=99)
        with pytest.raises(PoolUnhealthy) as failure:
            run_sharded(
                trained, "corki-5", SEEN_LAYOUT, SEED, lane_jobs_for(SEED, JOBS),
                fleet_size=32, workers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0), fault_plan=plan,
            )
        assert "injected worker crash" in str(failure.value.__cause__)

    def test_deterministic_worker_error_is_not_retried(self, trained):
        """A genuine bug (unknown instruction) propagates unchanged on the
        first attempt -- retries are for transient failures only."""

        class GhostTask:
            instruction = "summon a task that does not exist"

        before = dataclasses.replace(shared_pool_health(trained))
        with pytest.raises(KeyError, match="unknown instruction"):
            run_sharded(
                trained, "corki-5", SEEN_LAYOUT, SEED,
                [[GhostTask()], [GhostTask()]],
                fleet_size=32, workers=2, retry=NO_BACKOFF,
            )
        assert shared_pool_health(trained).retries == before.retries

    def test_hard_crash_detected_by_timeout_and_rerolled(self, trained):
        """``os._exit`` kills the worker process outright; only the chunk
        timeout can notice.  The pool respawns, re-dispatches, and the
        result still matches an in-process roll byte for byte."""
        jobs = lane_jobs_for(SEED, 2)
        before = dataclasses.replace(shared_pool_health(trained))
        merged = run_sharded(
            trained, "corki-5", SEEN_LAYOUT, SEED, jobs,
            fleet_size=32, workers=2, retry=NO_BACKOFF,
            fault_plan=FaultPlan(seed=3, crash_rate=1.0, hard_crash=True),
            chunk_timeout=8.0,
        )
        expected = roll_lane_chunk(
            trained, "corki-5", SEEN_LAYOUT, SEED, jobs, fleet_size=32
        )
        assert len(expected) == len(merged)
        for expected_lane, merged_lane in zip(expected, merged):
            assert_lane_equal(expected_lane, merged_lane)
        health = shared_pool_health(trained)
        assert health.respawns - before.respawns >= 1


# -- cache corruption ----------------------------------------------------------


class TestCacheFaults:
    def test_corrupt_first_read_evicts_then_heals(self, reference):
        plan = FaultPlan(seed=11, cache_corrupt_rate=1.0)
        cache = ResultCache(fault_plan=plan)
        key, traces = "ab" * 32, reference[0]
        cache.put(key, traces)
        assert cache.get(key) is None  # truncated on read 0: evict, miss
        assert cache.corrupt == 1 and cache.misses == 1 and len(cache) == 0
        cache.put(key, traces)
        healed = cache.get(key)  # read 1 is past the fault budget
        assert healed is not None and cache.hits == 1
        for fresh, roundtripped in zip(traces, healed):
            assert_traces_equal(fresh, roundtripped)

    def test_truncated_disk_entry_behaves_as_miss(self, tmp_path, reference):
        """A genuinely torn file (not injected) must also evict cleanly."""
        cache = ResultCache(directory=tmp_path)
        key, traces = "cd" * 32, reference[0]
        cache.put(key, traces)
        path = tmp_path / f"{key}.npz"
        path.write_bytes(path.read_bytes()[:40])
        rereader = ResultCache(directory=tmp_path)
        assert rereader.get(key) is None
        assert rereader.corrupt == 1 and not path.exists()

    def test_service_rerolls_corrupt_entry_byte_identically(
        self, trained, reference
    ):
        """Acceptance: with every entry's first read arriving truncated, a
        warm drain silently re-rolls and still equals the reference."""
        plan = FaultPlan(seed=11, cache_corrupt_rate=1.0)
        service = EvaluationService(trained, workers=1, slots=4, fault_plan=plan)
        requests = job_requests("corki-5", SEED, JOBS)
        service.serve(requests)  # cold: rolls and populates the cache
        warm = service.serve(requests)  # every first read corrupts
        assert all(result.ok and not result.cached for result in warm)
        served = [trace for result in warm for trace in result.traces]
        assert_lane_equal(reference_flat(reference), served)
        assert service.cache.corrupt == JOBS
        healed = service.serve(requests)  # re-written entries now hit
        assert all(result.cached for result in healed)


class TestAtomicCacheWrites:
    def test_put_leaves_only_final_files(self, tmp_path, reference):
        cache = ResultCache(directory=tmp_path)
        for index in range(3):
            cache.put(f"{index:02d}" * 32, reference[0])
        # The flock sidecar (`.lock`) is the one non-entry file the shared
        # mount contract allows (docs/serving.md, tests/test_cache_shared.py).
        names = sorted(
            entry.name for entry in tmp_path.iterdir() if entry.name != ".lock"
        )
        assert len(names) == 3 and all(name.endswith(".npz") for name in names)

    def test_failed_replace_leaves_no_partial_entry(
        self, tmp_path, reference, monkeypatch
    ):
        """If the atomic rename itself fails, neither a torn final file nor
        a stray temp file may remain."""
        cache = ResultCache(directory=tmp_path)
        key = "ef" * 32

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.serving.cache.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            cache.put(key, reference[0])
        assert [entry.name for entry in tmp_path.iterdir() if entry.name != ".lock"] == []


# -- deadlines -----------------------------------------------------------------


class TickingClock:
    """A monotonic clock advancing a fixed step per reading, so deadline
    expiry happens after a deterministic number of ticks -- no sleeping."""

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestDeadlines:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_expired_deadline_returns_structured_timeout(
        self, trained, reference, workers
    ):
        """Acceptance: an already-expired request answers ``timeout`` without
        blocking the batch, on both engines; survivors match the reference."""
        service = EvaluationService(trained, workers=workers, slots=4)
        requests = job_requests("corki-5", SEED, JOBS)
        requests[1] = dataclasses.replace(requests[1], deadline_ms=0.0)
        results = service.serve(requests)
        assert [result.status for result in results] == [
            "ok", "timeout", "ok", "ok"
        ]
        assert results[1].traces == [] and "deadline" in results[1].error
        for lane in (0, 2, 3):
            assert_lane_equal(reference[lane], results[lane].traces)
        assert service.stats()["timeouts"] == 1
        if workers > 1:
            service.close()

    def test_mid_flight_expiry_cancels_at_inference_boundary(
        self, trained, reference
    ):
        """A deadline that expires *during* the roll evicts its lane at the
        next tick; the surviving lane's bytes are untouched."""
        clock = TickingClock(step=0.001)
        service = EvaluationService(trained, workers=1, slots=2, clock=clock)
        requests = job_requests("corki-5", SEED, 2)
        # ~25 clock readings at 1 ms each: alive at admission, dead within
        # the first few ticks -- far shorter than any episode.
        requests[0] = dataclasses.replace(requests[0], deadline_ms=25.0)
        results = service.serve(requests)
        assert results[0].status == "timeout" and results[0].traces == []
        assert results[1].status == "ok"
        assert_lane_equal(reference[1], results[1].traces)
        assert service.stats()["timeouts"] == 1

    def test_deadline_is_validated_and_cache_neutral(self, trained):
        with pytest.raises(ValueError):
            EpisodeRequest("corki-5", ("lift the red block",), seed=1,
                           deadline_ms=-1.0)
        service = EvaluationService(trained, workers=1)
        request = job_requests("corki-5", SEED, 1)[0]
        relaxed = dataclasses.replace(request, deadline_ms=1e9)
        assert service._key(request) == service._key(relaxed)


# -- admission control ---------------------------------------------------------


class TestAdmissionControl:
    def test_overflow_sheds_with_rejected_results(self, trained, reference):
        service = EvaluationService(trained, workers=1, slots=4, max_queue=2)
        requests = job_requests("corki-5", SEED, JOBS)
        accepted = [service.submit(request) for request in requests]
        assert accepted == [True, True, False, False]
        results = service.drain()
        assert [result.status for result in results] == [
            "ok", "ok", "rejected", "rejected"
        ]
        assert results[2].traces == [] and "queue full" in results[2].error
        for lane in (0, 1):
            assert_lane_equal(reference[lane], results[lane].traces)
        assert service.stats()["rejections"] == 2
        # The drain emptied the queue: the shed request is admissible now.
        assert service.submit(requests[2]) is True
        assert service.drain()[0].status == "ok"

    def test_jsonl_surface_reports_statuses(self, trained):
        service = EvaluationService(trained, workers=1, slots=2, max_queue=1)
        request = job_requests("corki-5", SEED, 2)
        lines = "\n".join([
            json.dumps({"id": "a", "system": "corki-5", "seed": SEED,
                        "instructions": list(request[0].instructions)}),
            json.dumps({"id": "b", "system": "corki-5", "seed": SEED, "lane": 1,
                        "instructions": list(request[1].instructions)}),
            "",
        ])
        stdout = io.StringIO()
        serve_jsonl(service, io.StringIO(lines), stdout)
        first, second = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert first["id"] == "a" and first["status"] == "ok"
        assert first["successes"] and "estimate" in first
        assert second == {"id": "b", "status": "rejected",
                          "error": "admission queue full"}


# -- graceful degradation ------------------------------------------------------


class TestDegradation:
    def test_unhealthy_pool_degrades_to_in_process(self, trained, reference):
        """When every retry crashes, the drain falls back to the in-process
        engine: all requests still answer, byte-identical, and the fallback
        is counted -- never silent."""
        plan = FaultPlan(seed=2, crash_rate=1.0, faulted_attempts=99)
        with EvaluationService(
            trained, workers=2, slots=4,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0), fault_plan=plan,
        ) as service:
            results = service.serve(job_requests("corki-5", SEED, JOBS))
            assert all(result.ok for result in results)
            served = [trace for result in results for trace in result.traces]
            assert_lane_equal(reference_flat(reference), served)
            stats = service.stats()
            assert stats["degradations"] == 1
            assert stats["retries"] >= 1 and stats["faults_injected"] >= 2


# -- malformed request lines ---------------------------------------------------


class TestMalformedLines:
    def test_mangled_line_errors_without_killing_the_drain(self, trained):
        def plan_for(seed):
            return FaultPlan(seed=seed, malformed_line_rate=0.5)

        seed = next(
            s for s in range(100)
            if plan_for(s).mangles_line(0) and not plan_for(s).mangles_line(1)
        )
        service = EvaluationService(trained, workers=1, slots=2)
        request = job_requests("corki-5", SEED, 1)[0]
        payload = json.dumps({"id": "r", "system": "corki-5", "seed": SEED,
                              "instructions": list(request.instructions)})
        stdin = io.StringIO(payload + "\n" + payload + "\n\n")
        stdout = io.StringIO()
        served = serve_jsonl(service, stdin, stdout, fault_plan=plan_for(seed))
        error, ok = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert "error" in error and "status" not in error
        assert ok["id"] == "r" and ok["status"] == "ok"
        assert served == 1


# -- pool-lease lifecycle ------------------------------------------------------


class TestLeaseLifecycle:
    @pytest.fixture()
    def clone(self, trained):
        # A private policy object, so closing its pool cannot disturb the
        # module-shared (trained, 2) pool other tests keep warm.
        return restore_policies(archive_policies(trained))

    def test_close_releases_the_lease_and_refuses_work(self, clone):
        key = (id(clone), 2)
        service = EvaluationService(clone, workers=2, slots=2)
        assert parallel._LEASE_COUNTS[key] == 1
        assert key in parallel._POOL_CACHE
        service.close()
        assert key not in parallel._LEASE_COUNTS
        assert key not in parallel._POOL_CACHE
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(job_requests("corki-5", SEED, 1)[0])
        with pytest.raises(RuntimeError, match="closed"):
            service.drain()

    def test_context_manager_releases_on_exception(self, clone):
        key = (id(clone), 2)
        with pytest.raises(RuntimeError, match="boom"):
            with EvaluationService(clone, workers=2, slots=2):
                assert parallel._LEASE_COUNTS[key] == 1
                raise RuntimeError("boom")
        assert key not in parallel._LEASE_COUNTS
        assert key not in parallel._POOL_CACHE

    def test_shared_lease_refcounts(self, clone):
        key = (id(clone), 2)
        first = EvaluationService(clone, workers=2, slots=2)
        second = EvaluationService(clone, workers=2, slots=2)
        assert first._pool is second._pool
        assert parallel._LEASE_COUNTS[key] == 2
        first.close()
        assert parallel._LEASE_COUNTS[key] == 1
        assert key in parallel._POOL_CACHE
        second.close()
        assert key not in parallel._POOL_CACHE

    def test_garbage_collected_service_returns_its_lease(self, clone):
        key = (id(clone), 2)
        service = EvaluationService(clone, workers=2, slots=2)
        assert parallel._LEASE_COUNTS[key] == 1
        del service  # the weakref finalizer is the atexit-grade backstop
        assert key not in parallel._LEASE_COUNTS
        assert key not in parallel._POOL_CACHE


# -- end-to-end chaos smoke ----------------------------------------------------


class TestChaosServingSmoke:
    def test_service_survives_crashes_and_corrupt_reads(
        self, trained, reference
    ):
        """`python -m repro.serving` under an armed FaultPlan: every chunk's
        first dispatch crashes and every cache entry's first read arrives
        truncated, yet every request answers ``ok`` with reference bytes."""
        from repro.serving.__main__ import main as serve_main

        requests = job_requests("corki-5", SEED, 2)
        batch = "\n".join(
            json.dumps({
                "id": f"r{request.lane}", "system": request.system,
                "seed": request.seed, "lane": request.lane,
                "instructions": list(request.instructions),
            })
            for request in requests
        )
        stdin = io.StringIO(
            batch + "\n\n" + batch + "\n\n" + json.dumps({"op": "stats"}) + "\n"
        )
        stdout = io.StringIO()
        code = serve_main(
            [
                "--workers", "2", "--retry-attempts", "3",
                "--fault-seed", "9", "--fault-crash-rate", "1.0",
                "--fault-cache-rate", "1.0", "--max-queue", "8",
            ],
            policies=trained, stdin=stdin, stdout=stdout,
        )
        assert code == 0
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        responses, stats = lines[:-1], lines[-1]["stats"]
        assert len(responses) == 4
        assert all(response["status"] == "ok" for response in responses)
        for response in responses:
            lane = int(response["id"][1:])
            expected = reference[lane]
            assert response["frames"] == [trace.frames for trace in expected]
            assert response["executed_steps"] == [
                list(trace.executed_steps) for trace in expected
            ]
        assert stats["faults_injected"] >= 1 and stats["retries"] >= 1
        assert stats["corrupt"] >= 1 and stats["requests_served"] == 4
