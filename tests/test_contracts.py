"""reprolint: fixture corpus, waiver machinery, CLI exits, live-tree gate.

The fixture corpus under ``tests/data/lint/`` carries one good and one bad
snippet per rule; every bad snippet is a real historical bug shape (the
PR 4 ``[seed + 1, lane]`` RNG collision, the PR 7 torn cache write, ...).
The live-tree self-check is the same gate CI runs: the shipped ``repro``
package must lint clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.contracts import RULES, lint_paths, lint_source, lint_tree, rule_ids
from repro.contracts.__main__ import main as contracts_main
from repro.contracts.census import census_payload
from repro.contracts.deep import DEEP_RULES, deep_rule_ids
from repro.contracts.engine import BAD_WAIVER, STALE_WAIVER

FIXTURES = Path(__file__).parent / "data" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Module names the deep fixtures are linted under: LAYER-SAFE only places
#: modules inside the ``repro`` package, so its fixtures borrow an address.
DEEP_FIXTURE_MODULES = {"LAYER-SAFE": "repro.robot.layering_fixture"}


def deep_lint(path: Path, module_name: str | None):
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        module_name=module_name,
        deep=True,
    )


def fixture_path(rule_id: str, kind: str) -> Path:
    return FIXTURES / f"{rule_id.lower().replace('-', '_')}_{kind}.py"


def rules_hit(path: Path) -> set[str]:
    result = lint_paths([path])
    return {diagnostic.rule for diagnostic in result.violations}


# ---------------------------------------------------------------------------
# fixture corpus: every rule has a true positive and a clean counterpart


@pytest.mark.parametrize("rule_id", rule_ids())
def test_bad_fixture_trips_exactly_its_rule(rule_id):
    hit = rules_hit(fixture_path(rule_id, "bad"))
    assert rule_id in hit
    # The corpus stays one-rule-per-file so a regression is named precisely.
    assert hit == {rule_id}


@pytest.mark.parametrize("rule_id", rule_ids())
def test_good_fixture_is_clean(rule_id):
    result = lint_paths([fixture_path(rule_id, "good")])
    assert result.ok, [d.format() for d in result.violations]


def test_every_rule_has_both_fixtures():
    for rule_id in rule_ids():
        assert fixture_path(rule_id, "good").is_file()
        assert fixture_path(rule_id, "bad").is_file()


def test_pr4_collision_shape_is_caught():
    """The exact PR 4 bug -- seed arithmetic inside the lane key."""
    source = fixture_path("RNG-KEYED", "bad").read_text()
    assert "[seed + 1, lane]" in source  # the corpus keeps the shape verbatim
    result = lint_paths([fixture_path("RNG-KEYED", "bad")])
    flagged_lines = {
        d.line for d in result.violations if "seed arithmetic inside a key" in d.message
    }
    assert len(flagged_lines) == 2  # [seed + 1, lane] and [seed + 2, lane]


def test_pr7_torn_write_shape_is_caught():
    """The exact PR 7 bug -- cache payloads written straight to the final
    path."""
    result = lint_paths([fixture_path("ATOMIC-WRITE", "bad")])
    messages = [d.message for d in result.violations]
    assert any("open(..., 'w')" in message for message in messages)
    assert any("numpy.savez" in message for message in messages)


def test_diagnostics_carry_file_and_line():
    path = fixture_path("NO-HARD-EXIT", "bad")
    result = lint_paths([path])
    assert result.violations
    for diagnostic in result.violations:
        assert diagnostic.path == str(path)
        assert diagnostic.line >= 1
        assert diagnostic.format().startswith(f"{path}:{diagnostic.line}:")


# ---------------------------------------------------------------------------
# deep-pass fixture corpus (linted with the whole-program passes on)


@pytest.mark.parametrize("rule_id", deep_rule_ids())
def test_deep_bad_fixture_trips_exactly_its_rule(rule_id):
    result = deep_lint(fixture_path(rule_id, "bad"), DEEP_FIXTURE_MODULES.get(rule_id))
    hit = {d.rule for d in result.violations}
    assert hit == {rule_id}, [d.format() for d in result.violations]


@pytest.mark.parametrize("rule_id", deep_rule_ids())
def test_deep_good_fixture_is_clean(rule_id):
    result = deep_lint(fixture_path(rule_id, "good"), DEEP_FIXTURE_MODULES.get(rule_id))
    assert result.ok, [d.format() for d in result.violations]


def test_every_deep_rule_has_both_fixtures():
    for rule_id in deep_rule_ids():
        assert fixture_path(rule_id, "good").is_file()
        assert fixture_path(rule_id, "bad").is_file()


def test_deep_rule_metadata_is_complete():
    for rule in DEEP_RULES:
        assert rule.id and rule.title and rule.rationale
    assert len(set(deep_rule_ids())) == len(DEEP_RULES) == 4
    assert not set(deep_rule_ids()) & set(rule_ids())


def test_pr4_collision_shape_is_proven_by_provenance():
    """The exact PR 4 bug, this time *proven* colliding: across runs, seed
    S's [seed + 2, lane] stream is seed S+1's [seed + 1, lane] stream."""
    source = (
        "import numpy as np\n"
        "def lane_generators(seed, lane):\n"
        "    env = np.random.default_rng([seed + 1, lane])\n"
        "    feedback = np.random.default_rng([seed + 2, lane])\n"
        "    return env, feedback\n"
    )
    result = lint_source(source, deep=True, shallow=False)
    assert {d.rule for d in result.violations} == {"RNG-PROVENANCE"}
    assert "can collide" in result.violations[0].message


def test_provenance_accepts_domain_tagged_streams():
    source = (
        "import numpy as np\n"
        "def lane_generators(seed, lane):\n"
        "    env = np.random.default_rng([seed, 1, lane])\n"
        "    feedback = np.random.default_rng([seed, 2, lane])\n"
        "    return env, feedback\n"
    )
    assert lint_source(source, deep=True, shallow=False).ok


def test_provenance_specializes_through_call_sites():
    """A parameterized key is judged per call site: two helpers funnelling
    different constants through one constructor stay disjoint."""
    source = (
        "import numpy as np\n"
        "def make(seed, domain, lane):\n"
        "    return np.random.default_rng([seed, domain, lane])\n"
        "def env(seed, lane):\n"
        "    return make(seed, 1, lane)\n"
        "def feedback(seed, lane):\n"
        "    return make(seed, 2, lane)\n"
    )
    assert lint_source(source, deep=True, shallow=False).ok


def test_lane_shape_flags_axis_dropping_reduction():
    source = (
        "import numpy as np\n"
        "def f(q):\n"
        "    return q\n"
        "def f_lanes(qs: np.ndarray) -> np.ndarray:\n"
        "    return np.sum(qs, axis=0)\n"
    )
    result = lint_source(source, deep=True, shallow=False)
    assert [d.rule for d in result.violations] == ["LANE-SHAPE"]
    assert "reduces across the lane axis" in result.violations[0].message


def test_lane_shape_accepts_trailing_axis_reduction():
    source = (
        "import numpy as np\n"
        "def f(q):\n"
        "    return q\n"
        "def f_lanes(qs: np.ndarray) -> np.ndarray:\n"
        "    return np.sum(qs, axis=1)\n"
    )
    assert lint_source(source, deep=True, shallow=False).ok


def test_layer_safe_flags_upward_import():
    result = lint_source(
        "from repro.serving.service import EvaluationService\n",
        module_name="repro.robot.helper",
        deep=True,
        shallow=False,
    )
    assert [d.rule for d in result.violations] == ["LAYER-SAFE"]
    assert "upward import" in result.violations[0].message


def test_layer_safe_allows_downward_and_sibling_imports():
    result = lint_source(
        "import repro.robot.dynamics\nfrom repro import constants\n",
        module_name="repro.robot.helper",
        deep=True,
        shallow=False,
    )
    assert result.ok


def test_spawn_safe_flags_lambda_and_bound_method():
    source = (
        "def run(self, pool, chunks):\n"
        "    pool.map(lambda c: c, chunks)\n"
        "    pool.map(self.roll, chunks)\n"
    )
    result = lint_source(source, deep=True, shallow=False)
    assert [d.rule for d in result.violations] == ["SPAWN-SAFE", "SPAWN-SAFE"]


def test_spawn_safe_ignores_fluent_map_apis():
    """hypothesis's strategy.map(lambda ...) is not a pool dispatch."""
    source = "def gen(strategy):\n    return strategy.map(lambda x: x + 1)\n"
    assert lint_source(source, deep=True, shallow=False).ok


# ---------------------------------------------------------------------------
# deep/shallow profile interaction


def test_deep_waiver_is_not_stale_in_shallow_run():
    source = (
        "import numpy as np\n"
        "def f(qs):\n"
        "    return qs\n"
        "def f_lanes(qs: np.ndarray) -> np.ndarray:\n"
        "    # repro: allow[LANE-SHAPE] reason=demonstration kernel\n"
        "    return np.sum(qs)\n"
    )
    shallow = lint_source(source)  # deep pass off: the waiver must stay live
    assert shallow.ok, [d.format() for d in shallow.violations]
    deep = lint_source(source, deep=True)
    assert deep.ok and len(deep.waived) == 1


def test_shallow_waiver_is_not_stale_in_deep_only_run():
    source = (
        "import sys\n"
        "# repro: allow[NO-HARD-EXIT] reason=demonstration exit\n"
        "sys.exit(1)\n"
    )
    result = lint_source(source, deep=True, shallow=False)
    assert result.ok and not result.waived


def test_deep_waiver_is_stale_when_deep_pass_finds_nothing():
    source = "# repro: allow[LANE-SHAPE] reason=suppresses nothing\nx = 1\n"
    result = lint_source(source, deep=True)
    assert {d.rule for d in result.violations} == {STALE_WAIVER}


# ---------------------------------------------------------------------------
# modern-syntax regression corpus


def test_modern_syntax_fixture_is_clean_under_deep():
    path = FIXTURES / "modern_syntax_clean.py"
    result = deep_lint(path, None)
    assert result.ok, [d.format() for d in result.violations]


def test_walrus_bound_rng_is_still_checked():
    result = lint_source(
        "import numpy as np\n"
        "def f(seed):\n"
        "    if (rng := np.random.default_rng()) is not None:\n"
        "        return rng\n"
    )
    assert "RNG-KEYED" in {d.rule for d in result.violations}


def test_match_case_bodies_are_walked_by_deep_passes():
    source = (
        "import numpy as np\n"
        "def f(q):\n"
        "    return q\n"
        "def f_lanes(qs: np.ndarray, mode: int) -> np.ndarray:\n"
        "    match mode:\n"
        "        case 0:\n"
        "            return np.sum(qs, axis=0)\n"
        "        case _:\n"
        "            return qs\n"
    )
    result = lint_source(source, deep=True, shallow=False)
    assert [d.rule for d in result.violations] == ["LANE-SHAPE"]


def test_starred_shape_unpack_tracks_lane_count():
    source = (
        "import numpy as np\n"
        "def f(q):\n"
        "    return q\n"
        "def f_lanes(qs: np.ndarray) -> np.ndarray:\n"
        "    lanes, *trailing = qs.shape\n"
        "    return np.zeros((lanes, 3)) + qs.sum(axis=1)[:, None]\n"
    )
    assert lint_source(source, deep=True, shallow=False).ok


def test_nested_comprehension_stacking_stays_lane_aligned():
    source = (
        "import numpy as np\n"
        "def f(q):\n"
        "    return q\n"
        "def f_lanes(qs: np.ndarray) -> np.ndarray:\n"
        "    return np.stack([row * 2 for row in qs])\n"
    )
    assert lint_source(source, deep=True, shallow=False).ok


def test_main_guard_exit_is_allowed():
    result = lint_source(
        "import sys\n"
        "def main() -> int:\n"
        "    return 0\n"
        'if __name__ == "__main__":\n'
        "    raise SystemExit(main())\n"
    )
    assert result.ok, [d.format() for d in result.violations]


# ---------------------------------------------------------------------------
# waiver census artifact


def test_committed_census_matches_live_tree():
    """CI regenerates artifacts/lint-census.json and diffs it; this is the
    same gate as a test, so a waiver-count drift fails before push."""
    committed = json.loads((REPO_ROOT / "artifacts" / "lint-census.json").read_text())
    live = census_payload(lint_tree(deep=True), root=REPO_ROOT)
    assert committed == live, (
        "waiver census drifted -- regenerate with "
        "`python -m repro.contracts --deep --census artifacts/lint-census.json`"
    )


def test_census_cli_writes_parseable_json(tmp_path, capsys):
    out = tmp_path / "census.json"
    good = fixture_path("RNG-KEYED", "good")
    assert contracts_main([str(good), "--census", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert set(payload) == {
        "files", "violations", "waived_total", "waived_by_rule",
        "waived_by_file", "reasons_by_file",
    }
    assert payload["files"] == 1 and payload["violations"] == 0
    assert "waiver census written" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# waiver machinery


def test_waiver_on_same_line_suppresses():
    result = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(3)"
        "  # repro: allow[RNG-KEYED] reason=test stream\n"
    )
    assert result.ok
    assert len(result.waived) == 1


def test_waiver_on_line_above_suppresses():
    result = lint_source(
        "import numpy as np\n"
        "# repro: allow[RNG-KEYED] reason=test stream\n"
        "rng = np.random.default_rng(3)\n"
    )
    assert result.ok


def test_waiver_does_not_leak_past_adjacent_line():
    result = lint_source(
        "import numpy as np\n"
        "# repro: allow[RNG-KEYED] reason=covers only the next line\n"
        "a = np.random.default_rng(3)\n"
        "b = np.random.default_rng(4)\n"
    )
    assert len(result.waived) == 1  # line 3 rides the waiver
    assert [d.line for d in result.violations if d.rule == "RNG-KEYED"] == [4]


def test_reasonless_waiver_is_a_violation():
    result = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # repro: allow[RNG-KEYED]\n"
    )
    rules = {d.rule for d in result.violations}
    assert BAD_WAIVER in rules


def test_stale_waiver_is_a_violation():
    result = lint_source(
        "# repro: allow[NO-HARD-EXIT] reason=nothing here exits\n"
        "x = 1\n"
    )
    assert {d.rule for d in result.violations} == {STALE_WAIVER}


def test_one_waiver_can_cover_multiple_rules():
    result = lint_source(
        "import numpy as np\n"
        "import sys\n"
        "def f(seed):\n"
        "    # repro: allow[RNG-KEYED, NO-HARD-EXIT] reason=both intentional here\n"
        "    rng = np.random.default_rng(seed); sys.exit(int(rng.integers(2)))\n"
    )
    assert result.ok
    assert len(result.waived) == 2


def test_waiver_inside_docstring_is_inert():
    result = lint_source(
        '"""Docs showing the syntax:\n\n'
        "    # repro: allow[RNG-KEYED] reason=example\n"
        '"""\n'
        "x = 1\n"
    )
    assert result.ok
    assert not result.waived


# ---------------------------------------------------------------------------
# rule-engine behaviour pinned by the live tree's idioms


def test_clock_reference_as_default_argument_is_allowed():
    result = lint_source(
        "import time\n"
        "from typing import Callable\n"
        "def wait(clock: Callable[[], float] = time.monotonic):\n"
        "    return clock()\n"
    )
    assert result.ok


def test_bytesio_savez_is_not_a_file_write():
    result = lint_source(
        "import io\n"
        "import numpy as np\n"
        "def encode(arr):\n"
        "    buffer = io.BytesIO()\n"
        "    np.savez(buffer, arr=arr)\n"
        "    return buffer.getvalue()\n"
    )
    assert result.ok


def test_batched_kernel_found_via_importer_edge(tmp_path):
    """Scalar entry points often live in the module that *imports* the
    batched kernels (repro.robot.dynamics importing repro.robot.batched)."""
    kernels = tmp_path / "pkg_kernels.py"
    frontend = tmp_path / "pkg_frontend.py"
    kernels.write_text("def mass_lanes(qs):\n    return qs\n")
    frontend.write_text(
        "from pkg_kernels import mass_lanes\n\n"
        "def mass(q):\n    return mass_lanes([q])[0]\n"
    )
    result = lint_paths([kernels, frontend])
    assert result.ok, [d.format() for d in result.violations]


def test_rule_metadata_is_complete():
    for rule in RULES:
        assert rule.id and rule.title and rule.rationale
    assert len(set(rule_ids())) == len(RULES) >= 6


# ---------------------------------------------------------------------------
# CLI and the live-tree gate


def test_live_tree_is_lint_clean():
    result = lint_tree()
    assert result.ok, "\n".join(d.format() for d in result.violations)
    assert result.files > 50  # the whole package was actually walked


def test_live_tree_is_deep_clean():
    """The whole-program passes hold over the shipped package: every lane
    kernel preserves the lane axis, every RNG stream family is provably
    disjoint, the layering DAG and spawn-safety hold."""
    result = lint_tree(deep=True)
    assert result.ok, "\n".join(d.format() for d in result.violations)


def test_support_trees_are_deep_clean():
    """The CI support-tree profile: benchmarks/, examples/ and the test
    helpers share the cross-file invariants (deep passes only)."""
    for tree in ("benchmarks", "examples", "tests"):
        result = lint_tree(REPO_ROOT / tree, deep=True, shallow=False)
        assert result.ok, "\n".join(d.format() for d in result.violations)


def test_cli_deep_flags(capsys):
    assert contracts_main(["--deep"]) == 0
    assert "waived" in capsys.readouterr().out
    bad = fixture_path("SPAWN-SAFE", "bad")
    assert contracts_main(["--deep-only", str(bad)]) == 1
    assert "SPAWN-SAFE" in capsys.readouterr().out


def test_cli_exit_codes_and_output(capsys):
    bad = fixture_path("RNG-KEYED", "bad")
    assert contracts_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:" in out and "RNG-KEYED" in out

    good = fixture_path("RNG-KEYED", "good")
    assert contracts_main([str(good)]) == 0


def test_cli_default_tree_run_prints_waiver_census(capsys):
    assert contracts_main([]) == 0
    out = capsys.readouterr().out
    assert "violation(s)" in out and "waived" in out


def test_experiments_cli_lint_subcommand(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "reprolint:" in out


def test_experiments_cli_lint_deep(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "LAYER-SAFE" in out  # the deep waiver census shows in the summary


def test_experiments_cli_lint_runs_alone(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "tbl1"]) == 2
