"""reprolint: fixture corpus, waiver machinery, CLI exits, live-tree gate.

The fixture corpus under ``tests/data/lint/`` carries one good and one bad
snippet per rule; every bad snippet is a real historical bug shape (the
PR 4 ``[seed + 1, lane]`` RNG collision, the PR 7 torn cache write, ...).
The live-tree self-check is the same gate CI runs: the shipped ``repro``
package must lint clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.contracts import RULES, lint_paths, lint_source, lint_tree, rule_ids
from repro.contracts.__main__ import main as contracts_main
from repro.contracts.engine import BAD_WAIVER, STALE_WAIVER

FIXTURES = Path(__file__).parent / "data" / "lint"


def fixture_path(rule_id: str, kind: str) -> Path:
    return FIXTURES / f"{rule_id.lower().replace('-', '_')}_{kind}.py"


def rules_hit(path: Path) -> set[str]:
    result = lint_paths([path])
    return {diagnostic.rule for diagnostic in result.violations}


# ---------------------------------------------------------------------------
# fixture corpus: every rule has a true positive and a clean counterpart


@pytest.mark.parametrize("rule_id", rule_ids())
def test_bad_fixture_trips_exactly_its_rule(rule_id):
    hit = rules_hit(fixture_path(rule_id, "bad"))
    assert rule_id in hit
    # The corpus stays one-rule-per-file so a regression is named precisely.
    assert hit == {rule_id}


@pytest.mark.parametrize("rule_id", rule_ids())
def test_good_fixture_is_clean(rule_id):
    result = lint_paths([fixture_path(rule_id, "good")])
    assert result.ok, [d.format() for d in result.violations]


def test_every_rule_has_both_fixtures():
    for rule_id in rule_ids():
        assert fixture_path(rule_id, "good").is_file()
        assert fixture_path(rule_id, "bad").is_file()


def test_pr4_collision_shape_is_caught():
    """The exact PR 4 bug -- seed arithmetic inside the lane key."""
    source = fixture_path("RNG-KEYED", "bad").read_text()
    assert "[seed + 1, lane]" in source  # the corpus keeps the shape verbatim
    result = lint_paths([fixture_path("RNG-KEYED", "bad")])
    flagged_lines = {
        d.line for d in result.violations if "seed arithmetic inside a key" in d.message
    }
    assert len(flagged_lines) == 2  # [seed + 1, lane] and [seed + 2, lane]


def test_pr7_torn_write_shape_is_caught():
    """The exact PR 7 bug -- cache payloads written straight to the final
    path."""
    result = lint_paths([fixture_path("ATOMIC-WRITE", "bad")])
    messages = [d.message for d in result.violations]
    assert any("open(..., 'w')" in message for message in messages)
    assert any("numpy.savez" in message for message in messages)


def test_diagnostics_carry_file_and_line():
    path = fixture_path("NO-HARD-EXIT", "bad")
    result = lint_paths([path])
    assert result.violations
    for diagnostic in result.violations:
        assert diagnostic.path == str(path)
        assert diagnostic.line >= 1
        assert diagnostic.format().startswith(f"{path}:{diagnostic.line}:")


# ---------------------------------------------------------------------------
# waiver machinery


def test_waiver_on_same_line_suppresses():
    result = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(3)"
        "  # repro: allow[RNG-KEYED] reason=test stream\n"
    )
    assert result.ok
    assert len(result.waived) == 1


def test_waiver_on_line_above_suppresses():
    result = lint_source(
        "import numpy as np\n"
        "# repro: allow[RNG-KEYED] reason=test stream\n"
        "rng = np.random.default_rng(3)\n"
    )
    assert result.ok


def test_waiver_does_not_leak_past_adjacent_line():
    result = lint_source(
        "import numpy as np\n"
        "# repro: allow[RNG-KEYED] reason=covers only the next line\n"
        "a = np.random.default_rng(3)\n"
        "b = np.random.default_rng(4)\n"
    )
    assert len(result.waived) == 1  # line 3 rides the waiver
    assert [d.line for d in result.violations if d.rule == "RNG-KEYED"] == [4]


def test_reasonless_waiver_is_a_violation():
    result = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # repro: allow[RNG-KEYED]\n"
    )
    rules = {d.rule for d in result.violations}
    assert BAD_WAIVER in rules


def test_stale_waiver_is_a_violation():
    result = lint_source(
        "# repro: allow[NO-HARD-EXIT] reason=nothing here exits\n"
        "x = 1\n"
    )
    assert {d.rule for d in result.violations} == {STALE_WAIVER}


def test_one_waiver_can_cover_multiple_rules():
    result = lint_source(
        "import numpy as np\n"
        "import sys\n"
        "def f(seed):\n"
        "    # repro: allow[RNG-KEYED, NO-HARD-EXIT] reason=both intentional here\n"
        "    rng = np.random.default_rng(seed); sys.exit(int(rng.integers(2)))\n"
    )
    assert result.ok
    assert len(result.waived) == 2


def test_waiver_inside_docstring_is_inert():
    result = lint_source(
        '"""Docs showing the syntax:\n\n'
        "    # repro: allow[RNG-KEYED] reason=example\n"
        '"""\n'
        "x = 1\n"
    )
    assert result.ok
    assert not result.waived


# ---------------------------------------------------------------------------
# rule-engine behaviour pinned by the live tree's idioms


def test_clock_reference_as_default_argument_is_allowed():
    result = lint_source(
        "import time\n"
        "from typing import Callable\n"
        "def wait(clock: Callable[[], float] = time.monotonic):\n"
        "    return clock()\n"
    )
    assert result.ok


def test_bytesio_savez_is_not_a_file_write():
    result = lint_source(
        "import io\n"
        "import numpy as np\n"
        "def encode(arr):\n"
        "    buffer = io.BytesIO()\n"
        "    np.savez(buffer, arr=arr)\n"
        "    return buffer.getvalue()\n"
    )
    assert result.ok


def test_batched_kernel_found_via_importer_edge(tmp_path):
    """Scalar entry points often live in the module that *imports* the
    batched kernels (repro.robot.dynamics importing repro.robot.batched)."""
    kernels = tmp_path / "pkg_kernels.py"
    frontend = tmp_path / "pkg_frontend.py"
    kernels.write_text("def mass_lanes(qs):\n    return qs\n")
    frontend.write_text(
        "from pkg_kernels import mass_lanes\n\n"
        "def mass(q):\n    return mass_lanes([q])[0]\n"
    )
    result = lint_paths([kernels, frontend])
    assert result.ok, [d.format() for d in result.violations]


def test_rule_metadata_is_complete():
    for rule in RULES:
        assert rule.id and rule.title and rule.rationale
    assert len(set(rule_ids())) == len(RULES) >= 6


# ---------------------------------------------------------------------------
# CLI and the live-tree gate


def test_live_tree_is_lint_clean():
    result = lint_tree()
    assert result.ok, "\n".join(d.format() for d in result.violations)
    assert result.files > 50  # the whole package was actually walked


def test_cli_exit_codes_and_output(capsys):
    bad = fixture_path("RNG-KEYED", "bad")
    assert contracts_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:" in out and "RNG-KEYED" in out

    good = fixture_path("RNG-KEYED", "good")
    assert contracts_main([str(good)]) == 0


def test_cli_default_tree_run_prints_waiver_census(capsys):
    assert contracts_main([]) == 0
    out = capsys.readouterr().out
    assert "violation(s)" in out and "waived" in out


def test_experiments_cli_lint_subcommand(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "reprolint:" in out


def test_experiments_cli_lint_runs_alone(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "tbl1"]) == 2
