"""Closed-loop tests for the TS-CTC controller."""

import numpy as np
import pytest

from repro.robot import (
    ControlGains,
    JointState,
    TaskSpaceComputedTorqueController,
    TaskSpaceReference,
    end_effector_pose,
    panda,
    semi_implicit_euler_step,
)

_PANDA = panda()


def _hold_reference(model):
    pose = end_effector_pose(model, model.q_home)
    return TaskSpaceReference(pose, np.zeros(6), np.zeros(6))


class TestPoseError:
    def test_zero_at_reference(self):
        controller = TaskSpaceComputedTorqueController(_PANDA)
        pose = end_effector_pose(_PANDA, _PANDA.q_home)
        error = controller.pose_error(pose, _PANDA.q_home)
        assert np.allclose(error, np.zeros(6), atol=1e-9)

    def test_sign_convention(self):
        controller = TaskSpaceComputedTorqueController(_PANDA)
        pose = end_effector_pose(_PANDA, _PANDA.q_home)
        pose[0] += 0.05  # desired 5 cm further along +x
        error = controller.pose_error(pose, _PANDA.q_home)
        assert error[0] == pytest.approx(0.05, abs=1e-9)


class TestClosedLoop:
    def test_holds_pose_under_gravity(self):
        """At the reference with zero velocity, the arm must not drift."""
        controller = TaskSpaceComputedTorqueController(_PANDA)
        reference = _hold_reference(_PANDA)
        state = JointState(_PANDA.q_home.copy(), np.zeros(7))
        dt = 1e-3
        for step in range(200):
            if step % 10 == 0:
                tau = controller.torque(reference, state.q, state.qd)
            state = semi_implicit_euler_step(_PANDA, state, tau, dt)
        error = controller.pose_error(reference.pose, state.q)
        assert np.linalg.norm(error[:3]) < 1e-3

    def test_steps_toward_displaced_target(self):
        """A displaced reference produces motion that reduces the error."""
        controller = TaskSpaceComputedTorqueController(_PANDA)
        pose = end_effector_pose(_PANDA, _PANDA.q_home)
        pose[1] += 0.04
        reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
        state = JointState(_PANDA.q_home.copy(), np.zeros(7))
        initial_error = np.linalg.norm(controller.pose_error(pose, state.q)[:3])
        dt = 1e-3
        for step in range(300):
            if step % 10 == 0:
                tau = controller.torque(reference, state.q, state.qd)
            state = semi_implicit_euler_step(_PANDA, state, tau, dt)
        final_error = np.linalg.norm(controller.pose_error(pose, state.q)[:3])
        assert final_error < 0.2 * initial_error

    def test_torques_respect_limits(self):
        controller = TaskSpaceComputedTorqueController(
            _PANDA, ControlGains(kp=np.full(6, 5000.0), kv=np.full(6, 10.0))
        )
        pose = end_effector_pose(_PANDA, _PANDA.q_home)
        pose[0] += 0.5  # unreachable jump -> huge commanded force
        reference = TaskSpaceReference(pose, np.zeros(6), np.zeros(6))
        tau = controller.torque(reference, _PANDA.q_home, np.zeros(7))
        assert np.all(np.abs(tau) <= _PANDA.tau_limit + 1e-9)

    def test_precomputed_quantities_hook(self, rng):
        """Supplying quantities must reproduce the internally computed torque."""
        from repro.robot import operational_space_quantities

        controller = TaskSpaceComputedTorqueController(_PANDA)
        reference = _hold_reference(_PANDA)
        q = _PANDA.q_home
        qd = 0.05 * rng.normal(size=7)
        quantities = operational_space_quantities(_PANDA, q, qd)
        assert np.allclose(
            controller.torque(reference, q, qd),
            controller.torque(reference, q, qd, quantities=quantities),
        )


class TestIntegrator:
    def test_joint_limits_absorb_velocity(self):
        state = JointState(_PANDA.q_upper - 1e-4, np.full(7, 2.0))
        new_state = semi_implicit_euler_step(_PANDA, state, np.zeros(7), 0.01)
        assert np.all(new_state.q <= _PANDA.q_upper + 1e-12)
        clamped = new_state.q >= _PANDA.q_upper - 1e-9
        assert np.all(new_state.qd[clamped] == 0.0)

    def test_velocity_limits(self):
        state = JointState(_PANDA.q_home.copy(), np.zeros(7))
        new_state = semi_implicit_euler_step(_PANDA, state, _PANDA.tau_limit * 100, 0.1)
        assert np.all(np.abs(new_state.qd) <= _PANDA.qd_limit + 1e-12)

    def test_simulate_returns_all_states(self):
        from repro.robot import simulate_torque_steps

        state = JointState(_PANDA.q_home.copy(), np.zeros(7))
        states = simulate_torque_steps(_PANDA, state, lambda s, k: np.zeros(7), 1e-3, 10)
        assert len(states) == 11
