"""In-tree PEP 517/660 build backend (pure standard library).

Why this exists: the containers this repo grows in have no package index,
and any pyproject.toml that names an external backend makes ``pip install
-e .`` try to download setuptools/wheel into the isolated build
environment.  Declaring ``requires = []`` with this in-tree backend keeps
the isolated environment empty, so editable installs (and plain wheel
builds) work fully offline; online installs behave identically.

All metadata is read from ``pyproject.toml``'s ``[project]`` table -- this
module adds no second source of truth.  Wheels are deterministic: fixed
zip timestamps, sorted member order, hashed RECORD.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import re
import tarfile
import zipfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_EPOCH = (1980, 1, 1, 0, 0, 0)  # zip's earliest representable timestamp


def _load_project() -> dict:
    text = (_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    try:
        import tomllib

        return tomllib.loads(text)["project"]
    except ModuleNotFoundError:  # Python 3.10: enough metadata to install
        fields = {}
        for key in ("name", "version", "description", "requires-python"):
            match = re.search(rf'^{key} = "(.*)"$', text, re.MULTILINE)
            if match:
                fields[key] = match.group(1)
        fields["dependencies"] = ["numpy"]
        fields["scripts"] = {"repro-experiments": "repro.cli:main"}
        return fields


def _metadata(project: dict) -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {project['name']}",
        f"Version: {project['version']}",
    ]
    if project.get("description"):
        lines.append(f"Summary: {project['description']}")
    if project.get("requires-python"):
        lines.append(f"Requires-Python: {project['requires-python']}")
    for dep in project.get("dependencies", []):
        lines.append(f"Requires-Dist: {dep}")
    for extra, deps in sorted(project.get("optional-dependencies", {}).items()):
        lines.append(f"Provides-Extra: {extra}")
        lines.extend(f'Requires-Dist: {dep} ; extra == "{extra}"' for dep in deps)
    return "\n".join(lines) + "\n"


def _entry_points(project: dict) -> str:
    scripts = project.get("scripts", {})
    if not scripts:
        return ""
    lines = ["[console_scripts]"]
    lines.extend(f"{name} = {target}" for name, target in sorted(scripts.items()))
    return "\n".join(lines) + "\n"


_WHEEL_FILE = (
    "Wheel-Version: 1.0\n"
    "Generator: repro_build (in-tree)\n"
    "Root-Is-Purelib: true\n"
    "Tag: py3-none-any\n"
)


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


def _build(wheel_directory: str, editable: bool) -> str:
    project = _load_project()
    dist = project["name"].replace("-", "_")
    version = project["version"]
    dist_info = f"{dist}-{version}.dist-info"

    entries: list[tuple[str, bytes]] = []
    if editable:
        # PEP 660 via a .pth file: site-packages gains one line pointing at
        # src/, so the live tree is importable and edits apply immediately.
        entries.append(
            (f"__editable__.{dist}.pth", str(_ROOT / "src").encode("utf-8") + b"\n")
        )
    else:
        for file in sorted((_ROOT / "src").rglob("*.py")):
            entries.append((file.relative_to(_ROOT / "src").as_posix(), file.read_bytes()))
    entries.append((f"{dist_info}/METADATA", _metadata(project).encode("utf-8")))
    entries.append((f"{dist_info}/WHEEL", _WHEEL_FILE.encode("utf-8")))
    scripts = _entry_points(project)
    if scripts:
        entries.append((f"{dist_info}/entry_points.txt", scripts.encode("utf-8")))

    record = io.StringIO()
    writer = csv.writer(record, lineterminator="\n")
    for arcname, data in entries:
        writer.writerow([arcname, _record_hash(data), len(data)])
    writer.writerow([f"{dist_info}/RECORD", "", ""])
    entries.append((f"{dist_info}/RECORD", record.getvalue().encode("utf-8")))

    wheel_name = f"{dist}-{version}-py3-none-any.whl"
    with zipfile.ZipFile(
        Path(wheel_directory) / wheel_name, "w", zipfile.ZIP_DEFLATED
    ) as archive:
        for arcname, data in entries:
            member = zipfile.ZipInfo(arcname, date_time=_EPOCH)
            member.external_attr = 0o644 << 16
            archive.writestr(member, data)
    return wheel_name


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    return _build(wheel_directory, editable=False)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    return _build(wheel_directory, editable=True)


def build_sdist(sdist_directory, config_settings=None):
    project = _load_project()
    dist = project["name"].replace("-", "_")
    base = f"{dist}-{project['version']}"
    members: list[tuple[str, bytes]] = [("PKG-INFO", _metadata(project).encode("utf-8"))]
    for name in ("pyproject.toml", "repro_build.py", "setup.py", "README.md"):
        members.append((name, (_ROOT / name).read_bytes()))
    for file in sorted((_ROOT / "src").rglob("*.py")):
        members.append((file.relative_to(_ROOT).as_posix(), file.read_bytes()))
    sdist_name = f"{base}.tar.gz"
    with tarfile.open(Path(sdist_directory) / sdist_name, "w:gz") as archive:
        for arcname, data in members:
            info = tarfile.TarInfo(f"{base}/{arcname}")
            info.size = len(data)
            info.mode = 0o644
            archive.addfile(info, io.BytesIO(data))
    return sdist_name
