"""Benchmarks of the robot-dynamics substrate (feeds every control figure).

These are the computations the Corki accelerator replaces; their software
cost grounds the control-acceleration comparison of Sec. 6.3.
"""

import numpy as np
import pytest

from repro.robot import (
    TaskSpaceComputedTorqueController,
    TaskSpaceReference,
    bias_forces,
    end_effector_pose,
    forward_kinematics,
    geometric_jacobian,
    mass_matrix,
    operational_space_quantities,
    rnea,
)


@pytest.fixture()
def state(panda_model):
    rng = np.random.default_rng(0)
    return panda_model.q_home, 0.1 * rng.normal(size=panda_model.dof)


def test_forward_kinematics(benchmark, panda_model, state):
    q, _ = state
    benchmark(forward_kinematics, panda_model, q)


def test_geometric_jacobian(benchmark, panda_model, state):
    q, _ = state
    benchmark(geometric_jacobian, panda_model, q)


def test_rnea_inverse_dynamics(benchmark, panda_model, state):
    q, qd = state
    qdd = np.zeros(panda_model.dof)
    benchmark(rnea, panda_model, q, qd, qdd)


def test_mass_matrix_crba(benchmark, panda_model, state):
    q, _ = state
    benchmark(mass_matrix, panda_model, q)


def test_bias_forces(benchmark, panda_model, state):
    q, qd = state
    benchmark(bias_forces, panda_model, q, qd)


def test_operational_space_quantities(benchmark, panda_model, state):
    """The full five-block TS-CTC preparation (paper Fig. 6) in software."""
    q, qd = state
    benchmark(operational_space_quantities, panda_model, q, qd)


def test_tsctc_control_cycle(benchmark, panda_model, state):
    """One complete software control tick: the paper's 24.7 ms CPU stage."""
    q, qd = state
    controller = TaskSpaceComputedTorqueController(panda_model)
    reference = TaskSpaceReference(
        end_effector_pose(panda_model, q), np.zeros(6), np.zeros(6)
    )
    benchmark(controller.torque, reference, q, qd)
