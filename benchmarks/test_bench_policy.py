"""Benchmarks of the policy stack: inference, training steps, episodes.

These ground the algorithm half of the evaluation: the cost of one VLM +
policy-head inference (the unit Corki amortises over a trajectory) and the
closed-loop episode machinery behind Tbl. 1/2 and Fig. 11/12.
"""

import numpy as np

from repro.core import (
    VARIATIONS,
    WINDOW_LENGTH,
    run_baseline_episode,
    run_corki_episode,
)
from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, ManipulationEnv


def test_baseline_policy_inference(benchmark, bench_policies):
    """One per-frame action prediction (runs every 33 ms frame, Fig. 1a)."""
    baseline, _, _ = bench_policies
    rng = np.random.default_rng(0)
    window = rng.normal(size=(WINDOW_LENGTH, OBSERVATION_DIM))
    benchmark(baseline.predict, window, 0)


def test_baseline_policy_inference_batched(benchmark, bench_policies):
    """32 per-frame predictions in one batched pass (the fleet's hot path)."""
    baseline, _, _ = bench_policies
    rng = np.random.default_rng(0)
    windows = rng.normal(size=(32, WINDOW_LENGTH, OBSERVATION_DIM))
    instructions = np.arange(32) % len(TASKS)
    benchmark(baseline.predict_batch, windows, instructions)


def test_corki_trajectory_inference_batched(benchmark, bench_policies):
    """32 trajectory predictions in one batched LSTM sweep."""
    _, corki, _ = bench_policies
    rng = np.random.default_rng(0)
    windows = rng.normal(size=(32, WINDOW_LENGTH, corki.token_dim))
    origins = np.zeros((32, 6))
    benchmark(corki.predict_trajectory_batch, windows, origins, 1.0 / 30.0)


def test_corki_trajectory_inference(benchmark, bench_policies):
    """One trajectory prediction (runs once per executed trajectory, Fig. 1b)."""
    _, corki, _ = bench_policies
    rng = np.random.default_rng(0)
    tokens = rng.normal(size=(WINDOW_LENGTH, corki.token_dim))
    origin = np.zeros(6)
    benchmark(corki.predict_trajectory, tokens, origin, 1.0 / 30.0)


def test_corki_token_encode(benchmark, bench_policies):
    """One VLM token encode -- the unit of the 181.3 ms inference stage."""
    _, corki, _ = bench_policies
    rng = np.random.default_rng(0)
    observation = rng.normal(size=OBSERVATION_DIM)
    benchmark(corki.encode_frame_token, observation, 0)


def test_training_step_baseline(benchmark, bench_policies):
    """One optimiser step of Eq. 3 training on a 32-window batch."""
    from repro.core import TrainingConfig, train_baseline

    baseline, _, demos = bench_policies
    config = TrainingConfig(epochs=1, batch_size=32)
    subset = demos[:2]
    benchmark(train_baseline, baseline, subset, config)


def test_tbl1_episode_baseline(benchmark, bench_policies):
    """[tbl1/tbl2] one closed-loop baseline episode (30 Hz control path).

    Runs through the fleet engine as a one-lane fleet -- the same code path
    ``benchmarks/test_bench_fleet.py`` scales to 32 lanes.
    """
    baseline, _, _ = bench_policies

    def run():
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(1))
        return run_baseline_episode(env, baseline, TASKS[0], max_frames=40)

    trace = benchmark(run)
    assert trace.frames <= 40


def test_tbl1_episode_corki5(benchmark, bench_policies):
    """[tbl1/tbl2, fig11/fig12] one closed-loop Corki-5 episode (one-lane fleet)."""
    _, corki, _ = bench_policies

    def run():
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(1))
        return run_corki_episode(
            env, corki, TASKS[0], VARIATIONS["corki-5"], np.random.default_rng(2),
            max_frames=40,
        )

    trace = benchmark(run)
    assert trace.frames <= 40


def test_adaptive_termination_decision(benchmark, bench_policies):
    """Algorithm 1 at deployment scale (paper: <500 FLOPs)."""
    from repro.core import adaptive_termination_step, gripper_change_flags

    rng = np.random.default_rng(0)
    waypoints = np.cumsum(rng.normal(0.0, 0.005, size=(9, 3)), axis=0)
    flags = gripper_change_flags(np.ones(9, dtype=bool), True)
    benchmark(adaptive_termination_step, np.zeros(3), waypoints, flags, 0.02)
