"""Benchmarks of the neural substrate: autograd ops, layers, attention."""

import numpy as np

from repro.nn import LSTM, Adam, MultiHeadSelfAttention, Tensor, mse_loss


def test_matmul_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(64, 128)), requires_grad=True)
    b = Tensor(rng.normal(size=(128, 64)), requires_grad=True)

    def run():
        a.zero_grad()
        b.zero_grad()
        ((a @ b).tanh().sum()).backward()
        return a.grad

    benchmark(run)


def test_lstm_window_forward(benchmark):
    rng = np.random.default_rng(0)
    lstm = LSTM(48, 96, rng)
    sequence = [Tensor(rng.normal(size=(32, 48))) for _ in range(12)]
    benchmark(lstm, sequence)


def test_lstm_training_step(benchmark):
    rng = np.random.default_rng(0)
    lstm = LSTM(16, 32, rng)
    optimizer = Adam(lstm.parameters(), lr=1e-3)
    xs = rng.normal(size=(16, 8, 16))
    targets = rng.normal(size=(16, 32))

    def run():
        sequence = [Tensor(xs[:, t, :]) for t in range(8)]
        _, (h, _) = lstm(sequence)
        loss = mse_loss(h, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    benchmark(run)


def test_attention_forward(benchmark):
    rng = np.random.default_rng(0)
    attention = MultiHeadSelfAttention(dim=48, heads=4, rng=rng)
    tokens = Tensor(rng.normal(size=(13, 48)))
    benchmark(attention, tokens)
