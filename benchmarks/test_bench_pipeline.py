"""Benchmarks regenerating the pipeline-model artifacts (Fig. 2/13/14, Tbl. 3/4)."""

import numpy as np
import pytest

from repro import constants
from repro.pipeline import SystemStages, simulate_baseline, simulate_corki


def test_fleet_traces_drive_pipeline_model(benchmark, bench_policies):
    """[fig13 path] fleet-measured executed steps feeding the latency model.

    Rolls a small Corki fleet and replays the concatenated per-lane
    ``executed_steps`` through ``simulate_corki`` -- the accuracy-to-pipeline
    coupling the figure-13 experiment drives at full scale.
    """
    from repro.core import VARIATIONS, run_corki_fleet
    from repro.sim import SEEN_LAYOUT, TASKS, ManipulationEnv

    _, corki, _ = bench_policies

    def run():
        n = 8
        envs = [ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(i)) for i in range(n)]
        tasks = [TASKS[i % len(TASKS)] for i in range(n)]
        rngs = [np.random.default_rng(100 + i) for i in range(n)]
        traces = run_corki_fleet(envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=20)
        steps = [step for trace in traces for step in trace.executed_steps]
        return simulate_corki(steps, rng=np.random.default_rng(5))

    pipeline_trace = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(pipeline_trace.frames) > 0


@pytest.mark.parametrize("n", (1, 8, 32, 128))
def test_pipeline_lane_batch(benchmark, fleet_bench_records, n):
    """[fig13 batched] ``simulate_lanes`` throughput across the fleet axis.

    One Corki-5 pipeline trace per lane, every lane on its own keyed jitter
    stream -- the shape ``FleetEstimator`` prices a fleet with.  Lanes/sec
    lands in the session fleet record (policy ``pipeline-lanes``), so
    ``BENCH_fleet.json`` carries the pipeline-model axis next to the
    closed-loop episode axes.
    """
    from repro.analysis.fleet_bench import episodes_per_second
    from repro.pipeline import PipelineLane, lane_jitter_rng, simulate_lanes

    def make_lanes():
        return [
            PipelineLane(f"lane-{i}", executed_steps=(5,) * 12, rng=lane_jitter_rng(7, i))
            for i in range(n)
        ]

    def run(lanes):
        return simulate_lanes(lanes)

    arrays = benchmark.pedantic(run, setup=lambda: ((make_lanes(),), {}), rounds=3, iterations=1)
    assert len(arrays) == n
    benchmark.extra_info["lanes"] = n
    try:
        eps, rounds = n / benchmark.stats.stats.min, 3
    except (AttributeError, TypeError, ZeroDivisionError):
        eps, rounds = episodes_per_second(run, n, rounds=2, setup=make_lanes), 2
    fleet_bench_records.append(
        {
            "policy": "pipeline-lanes",
            "fleet_size": n,
            "episodes_per_second": round(eps, 1),
            "rounds": rounds,
        }
    )


def test_fig2_baseline_breakdown(benchmark):
    """[fig2] 300-frame baseline trace with per-stage breakdown."""
    def run():
        trace = simulate_baseline(300, rng=np.random.default_rng(2))
        return trace.latency_breakdown(), trace.energy_breakdown()

    latency, energy = benchmark(run)
    assert latency["inference"] == pytest.approx(0.727, abs=0.03)
    assert energy["inference"] == pytest.approx(0.958, abs=0.02)


def test_fig13_variation_sweep(benchmark):
    """[fig13] latency/energy for the baseline and all fixed-step variations."""
    def run():
        rng = np.random.default_rng(3)
        baseline = simulate_baseline(90, rng=rng)
        speedups = {}
        for steps in (1, 3, 5, 7, 9):
            trace = simulate_corki([steps] * (90 // steps), rng=rng)
            speedups[steps] = trace.speedup_vs(baseline)
        return speedups

    speedups = benchmark(run)
    assert speedups[9] > speedups[1]


def test_fig14_frame_series(benchmark):
    """[fig14] frame-by-frame trace and long-tail statistics for one sequence."""
    def run():
        rng = np.random.default_rng(14)
        baseline = simulate_baseline(100, rng=rng)
        corki = simulate_corki([5] * 20, rng=rng)
        return baseline.latency_variation, corki.latency_variation, corki.sorted_latencies_ms()

    base_cv, corki_cv, tail = benchmark(run)
    assert corki_cv > base_cv  # the paper's long-tail observation
    assert tail[0] >= tail[-1]


def test_tbl3_server_sweep(benchmark):
    """[tbl3] speedup under V100/H100/Jetson/Xeon inference scaling."""
    def run():
        results = {}
        for name, scale in constants.GPU_INFERENCE_SCALE.items():
            rng = np.random.default_rng(33)
            base = simulate_baseline(60, stages=SystemStages.baseline(scale), rng=rng)
            corki = simulate_corki([5] * 12, stages=SystemStages.corki(scale), rng=rng)
            results[name] = corki.speedup_vs(base)
        return results

    results = benchmark(run)
    assert results["h100"] > results["v100"] > results["jetson-orin"]


def test_tbl4_datarep_sweep(benchmark):
    """[tbl4] speedup under fp32/fp16/int8 inference scaling."""
    def run():
        results = {}
        for name, scale in constants.DATA_REPRESENTATION_SCALE.items():
            rng = np.random.default_rng(44)
            base = simulate_baseline(60, stages=SystemStages.baseline(scale), rng=rng)
            corki = simulate_corki([5] * 12, stages=SystemStages.corki(scale), rng=rng)
            results[name] = corki.speedup_vs(base)
        return results

    results = benchmark(run)
    assert results["int8"] > results["fp32"]
