"""Benchmarks of the simulation substrate (environment, camera, expert)."""

import numpy as np

from repro.sim import (
    SEEN_LAYOUT,
    TASKS,
    CameraModel,
    ManipulationEnv,
    collect_demonstrations,
    render_keyframes,
    sample_scene,
)


def test_env_step(benchmark):
    env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
    env.reset(TASKS[0])
    target = env.scene.ee_pose + np.array([0.01, 0.0, 0.0, 0.0, 0.0, 0.0])
    benchmark(env.step, target, True)


def test_camera_render(benchmark):
    scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
    camera = CameraModel()
    rng = np.random.default_rng(1)
    benchmark(camera.render, scene, rng)


def test_expert_rendering(benchmark):
    scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
    keyframes = TASKS[3].expert(scene)
    benchmark(render_keyframes, scene.ee_pose, keyframes)


def test_demo_collection(benchmark):
    """One scripted-expert demonstration episode end to end."""
    def run():
        rng = np.random.default_rng(7)
        return collect_demonstrations(SEEN_LAYOUT, rng, per_task=1, tasks=[TASKS[0]])

    demos = benchmark(run)
    assert len(demos) >= 0


def test_fig15_tracking_slice(benchmark, panda_model):
    """[fig15] one short dynamics-tier tracking run with the accelerator."""
    from repro.accelerator import CorkiAccelerator, JointImpactModel
    from repro.analysis import sample_trajectory, track_trajectory

    impact = JointImpactModel.from_model(panda_model)
    trajectory = sample_trajectory(panda_model, np.random.default_rng(0), steps=3)

    def run():
        accelerator = CorkiAccelerator(panda_model, threshold=0.4, impact=impact)
        return track_trajectory(
            panda_model, trajectory, control_hz=100, physics_hz=200,
            accelerator=accelerator,
        )

    report = benchmark(run)
    assert report.rmse_m < 0.05
