"""Shared fixtures for the benchmark harness.

Each benchmark regenerates (at benchmark-friendly scale) the computation
behind one paper artifact; the experiment drivers in
``repro.experiments`` produce the full-scale numbers.  Policies used by
closed-loop benchmarks are trained once per session at a small size.

Fleet benchmarks additionally report episodes/sec into a session-wide
record; passing ``--fleet-json PATH`` (or setting ``REPRO_FLEET_JSON``)
writes the record as a machine-readable ``BENCH_fleet.json`` artifact at
session end -- the same schema ``repro-experiments bench --json`` emits and
the CI throughput gate reads.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fleet-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write fleet throughput results as a BENCH_fleet.json artifact",
    )


@pytest.fixture(scope="session")
def panda_model():
    from repro.robot import panda

    return panda()


@pytest.fixture(scope="session")
def bench_policies():
    """Small trained policies shared by the closed-loop benchmarks."""
    from repro.analysis.fleet_bench import train_bench_policies

    return train_bench_policies()


@pytest.fixture(scope="session")
def fleet_bench_records():
    """Mutable session record the fleet benchmarks append results to."""
    return []


@pytest.fixture(scope="session", autouse=True)
def _write_fleet_bench_json(request, fleet_bench_records):
    """Persist the session's fleet measurements when a path was requested."""
    yield
    path = request.config.getoption("--fleet-json") or os.environ.get("REPRO_FLEET_JSON")
    if not path or not fleet_bench_records:
        return
    from repro.analysis.fleet_bench import bench_envelope, write_bench_json

    rounds = {entry.pop("rounds") for entry in fleet_bench_records}
    artifact = bench_envelope(
        sorted(fleet_bench_records, key=lambda e: (e["policy"], e["fleet_size"])),
        rounds=rounds.pop() if len(rounds) == 1 else sorted(rounds),
    )
    written = write_bench_json(path, artifact)
    print(f"\n[fleet benchmark artifact written to {written}]")
