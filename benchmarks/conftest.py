"""Shared fixtures for the benchmark harness.

Each benchmark regenerates (at benchmark-friendly scale) the computation
behind one paper artifact; the experiment drivers in
``repro.experiments`` produce the full-scale numbers.  Policies used by
closed-loop benchmarks are trained once per session at a small size.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def panda_model():
    from repro.robot import panda

    return panda()


@pytest.fixture(scope="session")
def bench_policies():
    """Small trained policies shared by the closed-loop benchmarks."""
    from repro.core import (
        BaselinePolicy,
        CorkiPolicy,
        TrainingConfig,
        train_baseline,
        train_corki,
    )
    from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, collect_demonstrations

    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return baseline, corki, demos
