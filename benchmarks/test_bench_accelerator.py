"""Benchmarks for the accelerator model (Sec. 4.2/4.3/6.1 artifacts)."""

import numpy as np
import pytest

from repro.accelerator import (
    CorkiAccelerator,
    JointImpactModel,
    ablation,
    mass_matrix_joint_sensitivity,
    resource_report,
)
from repro.robot import TaskSpaceReference, end_effector_pose


@pytest.fixture(scope="module")
def impact(panda_model):
    return JointImpactModel.from_model(panda_model)


def test_ablation_schedules(benchmark):
    """[abl-dp] Sec. 4.2: baseline vs reuse vs pipelined cycle counts."""
    reports = benchmark(ablation, 7)
    assert reports["reuse+pipeline"].cycles < reports["baseline"].cycles


def test_resource_report(benchmark):
    """[res] Sec. 6.1: ZC706 utilisation table."""
    report = benchmark(resource_report)
    assert report.bram_pct < 10.0


def test_fig9_mass_matrix_sensitivity(benchmark, panda_model):
    """[fig9] single-angle slice of the mass-matrix sensitivity study."""
    result = benchmark(
        mass_matrix_joint_sensitivity, panda_model, (np.deg2rad(17),)
    )
    assert max(result[float(np.deg2rad(17))]) > 0.1


def test_accelerator_control_tick_exact(benchmark, panda_model, impact):
    """Functional control tick with approximation disabled."""
    accelerator = CorkiAccelerator(panda_model, threshold=0.0, impact=impact)
    reference = TaskSpaceReference(
        end_effector_pose(panda_model, panda_model.q_home), np.zeros(6), np.zeros(6)
    )
    q = panda_model.q_home
    benchmark(accelerator.control_tick, reference, q, np.zeros(7))


def test_accelerator_control_tick_approximate(benchmark, panda_model, impact):
    """[abl-ace] control tick at the 40% design threshold (mostly reusing)."""
    accelerator = CorkiAccelerator(panda_model, threshold=0.4, impact=impact)
    reference = TaskSpaceReference(
        end_effector_pose(panda_model, panda_model.q_home), np.zeros(6), np.zeros(6)
    )
    accelerator.control_tick(reference, panda_model.q_home, np.zeros(7))
    benchmark(accelerator.control_tick, reference, panda_model.q_home, np.zeros(7))


def test_ace_decision(benchmark, panda_model, impact):
    """The ACE probability computation itself (paper: <100 FLOPs)."""
    from repro.accelerator import AceUnit

    ace = AceUnit(impact, threshold=0.4)
    ace.decide(panda_model.q_home)
    benchmark(ace.decide, panda_model.q_home + 1e-4)
