"""Benchmarks of the batched fleet-evaluation engine.

The fleet runner amortises the per-inference Python and small-matmul
overhead across lanes: one batched forward pass serves every episode that
needs inference on a tick.  These benchmarks report episodes/sec for fleet
sizes N in {1, 8, 32} (the perf trajectory the ROADMAP asks for) and pin
the acceptance criterion that a 32-lane fleet beats 32 sequential
single-episode runs by at least 3x.
"""

import time

import numpy as np
import pytest

from repro.core import VARIATIONS, run_baseline_fleet, run_corki_fleet
from repro.sim import SEEN_LAYOUT, TASKS, ManipulationEnv

_BENCH_FRAMES = 20
_FLEET_SIZES = (1, 8, 32)


def _fleet_inputs(n: int, seed_base: int = 0):
    tasks = [TASKS[i % len(TASKS)] for i in range(n)]
    envs = [
        ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed_base + i))
        for i in range(n)
    ]
    return envs, tasks


def _episodes_per_second(run, n: int) -> float:
    started = time.perf_counter()
    run()
    return n / (time.perf_counter() - started)


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_baseline_episodes(benchmark, bench_policies, n):
    """Baseline fleet throughput (inference on every frame, the worst case)."""
    baseline, _, _ = bench_policies

    def run():
        envs, tasks = _fleet_inputs(n)
        return run_baseline_fleet(envs, baseline, tasks, max_frames=_BENCH_FRAMES)

    traces = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["episodes"] = n
    assert len(traces) == n


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_corki5_episodes(benchmark, bench_policies, n):
    """Corki-5 fleet throughput (inference only at trajectory boundaries)."""
    _, corki, _ = bench_policies

    def run():
        envs, tasks = _fleet_inputs(n)
        rngs = [np.random.default_rng(1000 + i) for i in range(n)]
        return run_corki_fleet(
            envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=_BENCH_FRAMES
        )

    traces = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["episodes"] = n
    assert len(traces) == n


def test_fleet_speedup_over_single_episode_loop(bench_policies):
    """Acceptance criterion: a 32-lane fleet runs >= 3x the episodes/sec of
    the N=1 loop (32 sequential one-lane fleets) on the same workload."""
    baseline, _, _ = bench_policies
    n = 32

    def fleet_run():
        envs, tasks = _fleet_inputs(n)
        run_baseline_fleet(envs, baseline, tasks, max_frames=_BENCH_FRAMES)

    def sequential_run():
        envs, tasks = _fleet_inputs(n)
        for env, task in zip(envs, tasks):
            run_baseline_fleet([env], baseline, [task], max_frames=_BENCH_FRAMES)

    # Warm up BLAS/allocator paths once so neither side pays one-time costs.
    warm_envs, warm_tasks = _fleet_inputs(2)
    run_baseline_fleet(warm_envs, baseline, warm_tasks, max_frames=2)
    sequential_eps = _episodes_per_second(sequential_run, n)
    fleet_eps = _episodes_per_second(fleet_run, n)
    speedup = fleet_eps / sequential_eps
    print(
        f"\nfleet N=32: {fleet_eps:.1f} eps/s, sequential: {sequential_eps:.1f} eps/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched fleet should be >= 3x the single-episode loop, got {speedup:.2f}x"
    )
