"""Benchmarks of the batched fleet-evaluation engine.

PR 1 batched the inference half of the closed loop, PR 2 vectorised the
physics half; this suite also exercises the multi-process sharded path
(``repro.analysis.parallel``).  Episodes/sec is reported for fleet sizes
N in {1, 8, 32, 128} plus a sharded smoke row (the perf trajectory the
ROADMAP asks for); results land in the session's fleet record so
``--fleet-json`` can emit the ``BENCH_fleet.json`` artifact.

Environment construction happens in per-round *setup* callbacks, outside
the timed region: the clock measures the fleet run, not allocation noise.

Three assertions pin the throughput floor, and all run even under
``--benchmark-disable`` (the CI smoke pass):

* a 32-lane fleet beats 32 sequential single-episode runs by >= 3x;
* N=32 throughput stays within 2x of the measurement committed in
  ``artifacts/BENCH_fleet.json`` (the regression gate); and
* the workers=2 sharded run returns every lane (merge completeness).

The serving smokes add the socket path: TCP SLO rows (sustained eps +
p50/p99 request latency over a loopback server) and a skip-aware
weak-scaling gate (workers=2 >= 0.9x workers=1, asserted only on hosts
with >= 2 cores; the ratio rows are recorded everywhere).
"""

import os

import pytest

from repro.analysis.fleet_bench import (
    BENCH_FRAMES,
    DEFAULT_BENCH_PATH,
    corki_inputs,
    episodes_per_second,
    fleet_inputs,
    load_bench_json,
    measure_serving_throughput,
    measure_sharded_throughput,
    measure_tcp_serving,
    recorded_throughput,
    weak_scaling_summary,
)
from repro.core import VARIATIONS, run_baseline_fleet, run_corki_fleet

_FLEET_SIZES = (1, 8, 32, 128)
_SMOKE_WORKERS = 2
_SMOKE_LANES_PER_WORKER = 16
_SMOKE_SERVE_SLOTS = 8
_SMOKE_SERVE_REQUESTS = 16
_SMOKE_SCALING_LANES = 8
_WEAK_SCALING_FLOOR = 0.9


def _measure_and_record(benchmark, records, policy, n, run, setup):
    """One pedantic run; episodes/sec comes from its timings when enabled.

    ``setup`` builds each round's inputs outside the timed region (episodes
    mutate their environments, so rounds cannot share them).  Under
    ``--benchmark-disable`` (the CI smoke pass) pedantic runs the workload
    once untimed, so the record falls back to two perf_counter rounds -- the
    artifact notes how many rounds produced each entry.
    """
    traces = benchmark.pedantic(
        run, setup=lambda: ((setup(),), {}), rounds=3, iterations=1
    )
    benchmark.extra_info["episodes"] = n
    try:
        eps, rounds = n / benchmark.stats.stats.min, 3
    except (AttributeError, TypeError, ZeroDivisionError):
        eps, rounds = episodes_per_second(run, n, rounds=2, setup=setup), 2
    records.append(
        {
            "policy": policy,
            "fleet_size": n,
            "episodes_per_second": round(eps, 1),
            "rounds": rounds,
        }
    )
    return traces


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_baseline_episodes(benchmark, bench_policies, fleet_bench_records, n):
    """Baseline fleet throughput (inference on every frame, the worst case)."""
    baseline, _, _ = bench_policies

    def run(inputs):
        envs, tasks = inputs
        return run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    traces = _measure_and_record(
        benchmark, fleet_bench_records, "baseline", n, run, lambda: fleet_inputs(n)
    )
    assert len(traces) == n


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_corki5_episodes(benchmark, bench_policies, fleet_bench_records, n):
    """Corki-5 fleet throughput (inference only at trajectory boundaries)."""
    _, corki, _ = bench_policies

    def run(inputs):
        envs, tasks, rngs = inputs
        return run_corki_fleet(
            envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=BENCH_FRAMES
        )

    traces = _measure_and_record(
        benchmark, fleet_bench_records, "corki-5", n, run, lambda: corki_inputs(n)
    )
    assert len(traces) == n


def test_fleet_sharded_smoke(bench_policies, fleet_bench_records):
    """Sharded-path smoke (workers=2): rolls every lane across a warm pool.

    Runs on every CI push (it ignores ``--benchmark-disable``), so the
    multi-process dispatch/merge machinery is exercised per push and its
    measurement rides into the uploaded ``BENCH_fleet.json`` artifact.  The
    row count doubles as the merge-completeness assertion --
    ``measure_sharded_throughput`` verifies one trace list per lane inside
    its timed run.
    """
    rows = measure_sharded_throughput(
        policies=bench_policies,
        workers=(_SMOKE_WORKERS,),
        lanes_per_worker=_SMOKE_LANES_PER_WORKER,
        rounds=1,
    )
    assert len(rows) == 2  # baseline + corki-5
    for row in rows:
        assert row["workers"] == _SMOKE_WORKERS
        assert row["total_episodes"] == _SMOKE_WORKERS * _SMOKE_LANES_PER_WORKER
        assert row["episodes_per_second"] > 0
        fleet_bench_records.append({**row, "rounds": 1})


def test_fleet_serving_smoke(bench_policies, fleet_bench_records):
    """Serving-path smoke: requests through the continuous-batching service.

    Runs on every CI push (ignores ``--benchmark-disable``), so request
    intake, continuous slot refill, cache fill and the cache-hit path are
    exercised per push, and the serve-axis rows ride into the uploaded
    ``BENCH_fleet.json`` artifact.  The cached mode must beat the cold mode
    -- a cache hit that rolls anything is a bug.
    """
    rows = measure_serving_throughput(
        policies=bench_policies,
        slots=(_SMOKE_SERVE_SLOTS,),
        requests=_SMOKE_SERVE_REQUESTS,
        rounds=1,
    )
    assert len(rows) == 4  # (baseline, corki-5) x (serve, serve-cached)
    by_mode = {(row["policy"], row["mode"]): row["episodes_per_second"] for row in rows}
    for policy in ("baseline", "corki-5"):
        assert by_mode[(policy, "serve")] > 0
        assert by_mode[(policy, "serve-cached")] > by_mode[(policy, "serve")]
    for row in rows:
        fleet_bench_records.append({**row, "rounds": 1})


def test_fleet_tcp_serving_slo_smoke(bench_policies, fleet_bench_records):
    """TCP serving-path smoke: the same request workload over a loopback
    socket against the asyncio front end.

    Runs on every CI push (ignores ``--benchmark-disable``), so socket
    framing, admission, the drain-executor hop and response serialization
    are exercised per push, and the SLO rows -- sustained eps plus
    p50/p99 request latency -- ride into ``BENCH_fleet.json``.  Cached
    mode must still beat cold through the socket, and the latency
    percentiles must be ordered and positive.
    """
    rows = measure_tcp_serving(
        policies=bench_policies,
        slots=(_SMOKE_SERVE_SLOTS,),
        requests=_SMOKE_SERVE_REQUESTS,
        rounds=1,
    )
    assert len(rows) == 4  # (baseline, corki-5) x (tcp-serve, tcp-serve-cached)
    by_mode = {(row["policy"], row["mode"]): row for row in rows}
    for policy in ("baseline", "corki-5"):
        cold = by_mode[(policy, "tcp-serve")]
        cached = by_mode[(policy, "tcp-serve-cached")]
        assert cold["episodes_per_second"] > 0
        assert cached["episodes_per_second"] > cold["episodes_per_second"]
        for row in (cold, cached):
            assert 0 < row["p50_ms"] <= row["p99_ms"]
    for row in rows:
        fleet_bench_records.append({**row, "rounds": 1})


def test_fleet_weak_scaling_direction(bench_policies, fleet_bench_records):
    """ROADMAP item: record -- and where the host can honour it, gate --
    the weak-scaling direction of the sharded path.

    Measures workers=1 and workers=2 at the same lanes/worker and records
    both rows plus their ``weak-scaling`` summary into the artifact on
    *every* host.  The assertion (workers=2 >= 0.9x workers=1) only runs
    where ``os.cpu_count() >= 2``: on a single core two worker processes
    time-slice one CPU, so the direction is expected to invert and the
    gate would only measure the scheduler.  The 0.9 floor tolerates
    dispatch/merge overhead while still catching a serialized pool.
    """
    rows = measure_sharded_throughput(
        policies=bench_policies,
        workers=(1, _SMOKE_WORKERS),
        lanes_per_worker=_SMOKE_SCALING_LANES,
        rounds=1,
    )
    summary = weak_scaling_summary(rows)
    assert len(summary) == 2  # baseline + corki-5, workers=2 vs workers=1
    for row in rows + summary:
        fleet_bench_records.append({**row, "rounds": 1})
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"host has {cores} core(s): weak-scaling rows recorded, "
            "direction gate needs >= 2"
        )
    for row in summary:
        assert row["ratio_vs_workers_1"] >= _WEAK_SCALING_FLOOR, (
            f"{row['policy']} weak scaling regressed: workers={row['workers']} "
            f"runs at {row['ratio_vs_workers_1']:.3f}x the workers=1 throughput "
            f"(floor {_WEAK_SCALING_FLOOR})"
        )


def test_fleet_serving_survives_pool_death(bench_policies):
    """Chaos smoke: the pooled service survives one injected pool death.

    Runs on every CI push (ignores ``--benchmark-disable``).  A seeded
    :class:`FaultPlan` hard-kills the worker handling the request's chunk
    (``os._exit``); the service must detect the loss via ``chunk_timeout``,
    respawn the pool, re-dispatch, and answer byte-identically to the
    fault-free in-process roll -- without degrading (the pool recovers, so
    ``degradations`` stays 0).
    """
    from repro.analysis.evaluation import TrainedPolicies
    from repro.reliability import FaultPlan, RetryPolicy
    from repro.serving.service import EpisodeRequest, EvaluationService
    from repro.sim import TASKS

    baseline, corki, _ = bench_policies
    trained = TrainedPolicies(baseline, corki, 0, 0)
    request = EpisodeRequest(
        system="corki-5",
        instructions=(TASKS[0].instruction, TASKS[1].instruction),
        seed=211,
        max_frames=BENCH_FRAMES,
    )
    plan = FaultPlan(seed=7, crash_rate=1.0, hard_crash=True)
    with EvaluationService(
        trained,
        workers=_SMOKE_WORKERS,
        use_cache=False,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        chunk_timeout=10.0,
        fault_plan=plan,
    ) as chaos:
        (survived,) = chaos.serve([request])
        stats = chaos.stats()
    assert survived.status == "ok"
    assert stats["respawns"] >= 1 and stats["retries"] >= 1
    assert stats["degradations"] == 0

    with EvaluationService(trained, workers=1, use_cache=False) as plain:
        (fresh,) = plain.serve([request])
    assert survived.successes == fresh.successes
    assert [t.frames for t in survived.traces] == [t.frames for t in fresh.traces]
    for ours, theirs in zip(survived.traces, fresh.traces):
        assert (ours.ee_path == theirs.ee_path).all()


def test_fleet_speedup_over_single_episode_loop(bench_policies):
    """Acceptance criterion: a 32-lane fleet runs >= 3x the episodes/sec of
    the N=1 loop (32 sequential one-lane fleets) on the same workload."""
    baseline, _, _ = bench_policies
    n = 32

    def fleet_run(inputs):
        envs, tasks = inputs
        run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    def sequential_run(inputs):
        envs, tasks = inputs
        for env, task in zip(envs, tasks):
            run_baseline_fleet([env], baseline, [task], max_frames=BENCH_FRAMES)

    # Warm up BLAS/allocator paths once so neither side pays one-time costs.
    warm_envs, warm_tasks = fleet_inputs(2)
    run_baseline_fleet(warm_envs, baseline, warm_tasks, max_frames=2)
    sequential_eps = episodes_per_second(
        sequential_run, n, rounds=1, setup=lambda: fleet_inputs(n)
    )
    fleet_eps = episodes_per_second(
        fleet_run, n, rounds=1, setup=lambda: fleet_inputs(n)
    )
    speedup = fleet_eps / sequential_eps
    print(
        f"\nfleet N=32: {fleet_eps:.1f} eps/s, sequential: {sequential_eps:.1f} eps/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched fleet should be >= 3x the single-episode loop, got {speedup:.2f}x"
    )


def test_fleet_throughput_regression_gate(bench_policies):
    """CI gate: N=32 throughput must stay within 2x of the committed record.

    ``artifacts/BENCH_fleet.json`` holds the committed measurement; a fresh
    measurement falling below half of it means the hot path regressed (or
    the machine is not comparable -- in which case re-record the artifact
    deliberately).  The gate reads the in-process rows only
    (``recorded_throughput`` with ``workers=None``).
    """
    if not DEFAULT_BENCH_PATH.exists():
        pytest.skip(f"no recorded baseline at {DEFAULT_BENCH_PATH}")
    recorded = load_bench_json(DEFAULT_BENCH_PATH)
    baseline, corki, _ = bench_policies
    n = 32

    def run_base(inputs):
        envs, tasks = inputs
        run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    def run_cork(inputs):
        envs, tasks, rngs = inputs
        run_corki_fleet(
            envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=BENCH_FRAMES
        )

    cases = (
        ("baseline", run_base, lambda: fleet_inputs(n)),
        ("corki-5", run_cork, lambda: corki_inputs(n)),
    )
    for policy, run, setup in cases:
        floor = recorded_throughput(recorded, policy, n)
        if floor is None:
            continue
        measured = episodes_per_second(run, n, rounds=3, setup=setup)
        print(f"\n{policy} N={n}: {measured:.1f} eps/s (recorded {floor:.1f}, floor {floor / 2:.1f})")
        assert measured >= floor / 2.0, (
            f"{policy} fleet throughput regressed: {measured:.1f} eps/s is below half "
            f"the recorded {floor:.1f} eps/s (artifacts/BENCH_fleet.json)"
        )
