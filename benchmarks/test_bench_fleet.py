"""Benchmarks of the batched fleet-evaluation engine.

PR 1 batched the inference half of the closed loop; this suite now also
exercises the vectorised physics half: the structure-of-arrays environment
kernel (``repro.sim.env.step_lanes``), batched trajectory evaluation and
per-tick success masks.  Episodes/sec is reported for fleet sizes
N in {1, 8, 32, 128} (the perf trajectory the ROADMAP asks for); results
land in the session's fleet record so ``--fleet-json`` can emit the
``BENCH_fleet.json`` artifact.

Two assertions pin the throughput floor, and both run even under
``--benchmark-disable`` (the CI smoke pass):

* a 32-lane fleet beats 32 sequential single-episode runs by >= 3x; and
* N=32 throughput stays within 2x of the measurement committed in
  ``artifacts/BENCH_fleet.json`` (the regression gate).
"""

import numpy as np
import pytest

from repro.analysis.fleet_bench import (
    BENCH_FRAMES,
    DEFAULT_BENCH_PATH,
    episodes_per_second,
    fleet_inputs,
    load_bench_json,
    recorded_throughput,
)
from repro.core import VARIATIONS, run_baseline_fleet, run_corki_fleet

_FLEET_SIZES = (1, 8, 32, 128)


def _measure_and_record(benchmark, records, policy, n, run):
    """One pedantic run; episodes/sec comes from its timings when enabled.

    Under ``--benchmark-disable`` (the CI smoke pass) pedantic runs the
    workload once untimed, so the record falls back to two perf_counter
    rounds -- the artifact notes how many rounds produced each entry.
    """
    traces = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["episodes"] = n
    try:
        eps, rounds = n / benchmark.stats.stats.min, 3
    except (AttributeError, TypeError, ZeroDivisionError):
        eps, rounds = episodes_per_second(run, n, rounds=2), 2
    records.append(
        {
            "policy": policy,
            "fleet_size": n,
            "episodes_per_second": round(eps, 1),
            "rounds": rounds,
        }
    )
    return traces


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_baseline_episodes(benchmark, bench_policies, fleet_bench_records, n):
    """Baseline fleet throughput (inference on every frame, the worst case)."""
    baseline, _, _ = bench_policies

    def run():
        envs, tasks = fleet_inputs(n)
        return run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    traces = _measure_and_record(benchmark, fleet_bench_records, "baseline", n, run)
    assert len(traces) == n


@pytest.mark.parametrize("n", _FLEET_SIZES)
def test_fleet_corki5_episodes(benchmark, bench_policies, fleet_bench_records, n):
    """Corki-5 fleet throughput (inference only at trajectory boundaries)."""
    _, corki, _ = bench_policies

    def run():
        envs, tasks = fleet_inputs(n)
        rngs = [np.random.default_rng(1000 + i) for i in range(n)]
        return run_corki_fleet(
            envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=BENCH_FRAMES
        )

    traces = _measure_and_record(benchmark, fleet_bench_records, "corki-5", n, run)
    assert len(traces) == n


def test_fleet_speedup_over_single_episode_loop(bench_policies):
    """Acceptance criterion: a 32-lane fleet runs >= 3x the episodes/sec of
    the N=1 loop (32 sequential one-lane fleets) on the same workload."""
    baseline, _, _ = bench_policies
    n = 32

    def fleet_run():
        envs, tasks = fleet_inputs(n)
        run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    def sequential_run():
        envs, tasks = fleet_inputs(n)
        for env, task in zip(envs, tasks):
            run_baseline_fleet([env], baseline, [task], max_frames=BENCH_FRAMES)

    # Warm up BLAS/allocator paths once so neither side pays one-time costs.
    warm_envs, warm_tasks = fleet_inputs(2)
    run_baseline_fleet(warm_envs, baseline, warm_tasks, max_frames=2)
    sequential_eps = episodes_per_second(sequential_run, n, rounds=1)
    fleet_eps = episodes_per_second(fleet_run, n, rounds=1)
    speedup = fleet_eps / sequential_eps
    print(
        f"\nfleet N=32: {fleet_eps:.1f} eps/s, sequential: {sequential_eps:.1f} eps/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched fleet should be >= 3x the single-episode loop, got {speedup:.2f}x"
    )


def test_fleet_throughput_regression_gate(bench_policies):
    """CI gate: N=32 throughput must stay within 2x of the committed record.

    ``artifacts/BENCH_fleet.json`` holds the measurement committed with the
    vectorisation PR; a fresh measurement falling below half of it means the
    hot path regressed (or the machine is not comparable -- in which case
    re-record the artifact deliberately).
    """
    if not DEFAULT_BENCH_PATH.exists():
        pytest.skip(f"no recorded baseline at {DEFAULT_BENCH_PATH}")
    recorded = load_bench_json(DEFAULT_BENCH_PATH)
    baseline, corki, _ = bench_policies
    n = 32

    def run_baseline():
        envs, tasks = fleet_inputs(n)
        run_baseline_fleet(envs, baseline, tasks, max_frames=BENCH_FRAMES)

    def run_corki():
        envs, tasks = fleet_inputs(n)
        rngs = [np.random.default_rng(1000 + i) for i in range(n)]
        run_corki_fleet(
            envs, corki, tasks, VARIATIONS["corki-5"], rngs, max_frames=BENCH_FRAMES
        )

    for policy, run in (("baseline", run_baseline), ("corki-5", run_corki)):
        floor = recorded_throughput(recorded, policy, n)
        if floor is None:
            continue
        measured = episodes_per_second(run, n, rounds=3)
        print(f"\n{policy} N={n}: {measured:.1f} eps/s (recorded {floor:.1f}, floor {floor / 2:.1f})")
        assert measured >= floor / 2.0, (
            f"{policy} fleet throughput regressed: {measured:.1f} eps/s is below half "
            f"the recorded {floor:.1f} eps/s (artifacts/BENCH_fleet.json)"
        )
