"""Setuptools shim.

The real build backend is the in-tree ``repro_build.py`` (see
pyproject.toml), which works with an empty isolated build environment so
``pip install -e .`` succeeds offline.  This file only keeps the legacy
``python setup.py develop`` spelling alive for tools that still invoke it;
setuptools >= 61 reads the ``[project]`` metadata from pyproject.toml.
"""

from setuptools import setup

setup()
